package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// Stats is the payload of a STATS response.
type Stats = shard.Stats

// Pair is one key/value pair in a SCAN response.
type Pair = shard.Pair

// ScrubHealth is the maintenance subsystem's health block, carried by
// both STATS (inside the shard stats) and SCRUB responses.
type ScrubHealth = shard.ScrubHealth

// ScrubStatus is the JSON payload of a SCRUB response: the set-wide
// maintenance health, plus — when the request asked for a pass — the
// merged report of the full pass it ran.
type ScrubStatus struct {
	// Ran reports whether this request ran a full pass (mode 1); with
	// mode 0 the response is health-only and Report is zero.
	Ran bool `json:"ran"`
	// Report is the merged full-pass report when Ran. Its
	// checksums_verified field says whether object checksums were
	// actually verified — false in checksum-less modes, where "0 bad
	// objects" must not be read as "verified clean".
	Report pangolin.ScrubReport `json:"report"`
	Health ScrubHealth          `json:"health"`
}

// Server serves the KV protocol over TCP on top of a shard.Set. It owns
// the network side only: the set is created and closed by the caller, so a
// simulated crash can abandon the set while the process decides how to
// die.
type Server struct {
	set *shard.Set

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closing atomic.Bool

	crashOnce sync.Once
	crashed   chan struct{}
}

// New wraps set in a server.
func New(set *shard.Set) *Server {
	return &Server{
		set:     set,
		conns:   make(map[net.Conn]struct{}),
		crashed: make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:7499"; port 0 picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr returns the bound address; call after Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown stops accepting, closes every connection, and waits for the
// handlers to finish. It does not touch the shard set.
func (s *Server) Shutdown() {
	s.closing.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Crashed is closed after an OpCrash request has written crash images for
// every shard. The process owner should then exit WITHOUT syncing the set,
// completing the simulated machine death.
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// serveConn handles one connection. The first frame selects the
// protocol: a HELLO switches the connection to the pipelined v2 loop
// (sequence-numbered frames, out-of-order completion); anything else is
// served as v1 — the original one-op-per-frame, in-order protocol, kept
// as the degenerate case so old clients keep working unchanged.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	first, err := ReadFrame(br, nil)
	if err != nil {
		return // EOF or broken conn; nothing to answer
	}
	if version, window, ok := DecodeHello(first); ok {
		s.servePipelined(br, bw, version, window)
		return
	}
	s.serveV1(br, bw, first)
}

// serveV1 runs the in-order request loop: decode, execute, reply, one
// request at a time. first is the already-read opening frame. Requests
// on a v1 connection are answered in order; concurrency comes from
// concurrent connections.
func (s *Server) serveV1(br *bufio.Reader, bw *bufio.Writer, first []byte) {
	in := first
	var out []byte
	for {
		var crashed bool
		out, crashed = s.handle(out[:0], in)
		if err := WriteFrame(bw, out); err != nil {
			return
		}
		// Flush eagerly unless the client has already pipelined more
		// requests onto the wire; always flush before announcing a
		// crash, since the announcement tears connections down.
		if br.Buffered() == 0 || crashed {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if crashed {
			// Signal only after the OK response is on the wire, so
			// the requesting client sees its answer before the
			// process owner starts killing connections.
			s.crashOnce.Do(func() { close(s.crashed) })
		}
		payload, err := ReadFrame(br, in)
		if err != nil {
			return
		}
		in = payload
	}
}

// completion is one finished v2 request on its way to the wire.
type completion struct {
	payload []byte // seq + status + body
	crash   bool   // a successful OpCrash: flush, then announce
}

// pipeConn is the per-connection state of a pipelined v2 session: the
// in-flight window semaphore the reader acquires per request (and the
// writer releases once the reply is on the wire) and the completion
// channel between op completion and the writer goroutine. The channel's
// capacity equals the window, and every in-flight op holds exactly one
// window slot, so completing an op NEVER blocks — a shard worker
// goroutine invoking a completion callback cannot be stalled by a slow
// connection.
type pipeConn struct {
	s           *Server
	sem         chan struct{}
	completions chan completion
	inflight    sync.WaitGroup
}

// complete finishes one request with a status and body.
func (pc *pipeConn) complete(seq uint64, status uint8, body []byte) {
	pc.completeRaw(seq, EncodeResponse(nil, status, body), false)
}

// completeErr finishes one request with a typed failure status.
func (pc *pipeConn) completeErr(seq uint64, err error) {
	pc.complete(seq, errStatus(err), []byte(err.Error()))
}

// completeRaw finishes one request whose status+body payload is already
// encoded, prepending the echoed sequence number.
func (pc *pipeConn) completeRaw(seq uint64, resp []byte, crash bool) {
	payload := appendU64(make([]byte, 0, 8+len(resp)), seq)
	payload = append(payload, resp...)
	pc.completions <- completion{payload: payload, crash: crash}
	pc.inflight.Done()
}

// writeLoop is the per-connection writer goroutine: it streams
// completions to the wire in the order they land — which is completion
// order, not request order — flushing whenever the queue goes empty,
// and releases each completion's window slot once its reply is written.
// A write error marks the connection dead but the loop keeps draining
// (and discarding), so in-flight completion callbacks can never block
// on a broken connection.
func (pc *pipeConn) writeLoop(bw *bufio.Writer, done chan struct{}) {
	defer close(done)
	dead := false
	for c := range pc.completions {
		if !dead {
			if err := WriteFrame(bw, c.payload); err != nil {
				dead = true
			} else if len(pc.completions) == 0 || c.crash {
				if err := bw.Flush(); err != nil {
					dead = true
				}
			}
		}
		if c.crash && !dead {
			// As on the v1 path: announce only after the OK response
			// is on the wire, so the requesting client sees its answer
			// before the process owner starts killing connections.
			pc.s.crashOnce.Do(func() { close(pc.s.crashed) })
		}
		<-pc.sem
	}
}

// servePipelined runs one v2 session after its HELLO: a reader loop
// (this goroutine) that decodes frames and dispatches them for
// asynchronous completion, and a writer goroutine that streams replies
// as they complete. The in-flight window is the negotiated one: when a
// connection has window ops outstanding the reader simply stops reading
// — TCP backpressure is the overload behavior, and the window bounds
// the per-connection completion memory. On connection loss or server
// shutdown every dispatched op still resolves (the writer drains what
// it cannot send), so no completion callback is ever left dangling.
func (s *Server) servePipelined(br *bufio.Reader, bw *bufio.Writer, version, reqWindow uint64) {
	if version != ProtocolV2 {
		resp := EncodeResponse(nil, StatusErr, []byte(fmt.Sprintf("server: unsupported protocol version %d", version)))
		if WriteFrame(bw, resp) == nil {
			bw.Flush()
		}
		return
	}
	win := GrantWindow(reqWindow)
	ack := appendU64(appendU64(nil, ProtocolV2), uint64(win))
	if WriteFrame(bw, EncodeResponse(nil, StatusOK, ack)) != nil {
		return
	}
	if bw.Flush() != nil {
		return
	}
	pc := &pipeConn{
		s:           s,
		sem:         make(chan struct{}, win),
		completions: make(chan completion, win),
	}
	writerDone := make(chan struct{})
	go pc.writeLoop(bw, writerDone)
	var in []byte
	for {
		payload, err := ReadFrame(br, in)
		if err != nil {
			break
		}
		in = payload
		seq, req, err := DecodeRequestSeq(payload)
		if err != nil && len(payload) < 8 {
			break // no sequence number to echo: corrupt stream, drop
		}
		pc.sem <- struct{}{} // in-flight window: blocks when full
		pc.inflight.Add(1)
		if err != nil {
			pc.complete(seq, StatusErr, []byte(err.Error()))
			continue
		}
		s.dispatch(pc, seq, req)
	}
	// No more requests (EOF, broken conn, or corrupt stream). Every
	// dispatched op still completes; wait for them, then let the writer
	// drain its queue and exit.
	pc.inflight.Wait()
	close(pc.completions)
	<-writerDone
}

// dispatch routes one v2 request for asynchronous completion. Single-key
// data ops feed the shard layer directly: writes go straight into the
// shard worker queue (whose group-commit drain folds queued ops into
// one transaction — the reason deep pipelines produce big groups), and
// GETs run the concurrent verified-read fast path inline on this
// handler goroutine, falling back to the queue. The remaining verbs
// block on multi-shard fan-outs, so each runs on its own goroutine,
// bounded by the in-flight window.
func (s *Server) dispatch(pc *pipeConn, seq uint64, req Request) {
	switch req.Op {
	case OpGet:
		s.set.SubmitGet(req.Key, func(r shard.BatchResult) {
			switch {
			case r.Err != nil:
				pc.completeErr(seq, r.Err)
			case !r.OK:
				pc.complete(seq, StatusNotFound, nil)
			default:
				var body [8]byte
				binary.BigEndian.PutUint64(body[:], r.V)
				pc.complete(seq, StatusOK, body[:])
			}
		})
	case OpPut:
		s.set.SubmitPut(req.Key, req.Val, func(r shard.BatchResult) {
			if r.Err != nil {
				pc.completeErr(seq, r.Err)
				return
			}
			pc.complete(seq, StatusOK, nil)
		})
	case OpDel:
		s.set.SubmitDel(req.Key, func(r shard.BatchResult) {
			switch {
			case r.Err != nil:
				pc.completeErr(seq, r.Err)
			case !r.OK:
				pc.complete(seq, StatusNotFound, nil)
			default:
				pc.complete(seq, StatusOK, nil)
			}
		})
	default:
		go func() {
			out, crashed := s.handleReq(nil, req, true)
			pc.completeRaw(seq, out, crashed)
		}()
	}
}

// handle executes one v1 request payload and appends the response
// payload to out. The second result reports that this request was a
// successful OpCrash, which the connection loop announces after
// flushing.
func (s *Server) handle(out, payload []byte) ([]byte, bool) {
	req, err := DecodeRequest(payload)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error())), false
	}
	return s.handleReq(out, req, false)
}

// handleReq executes one decoded request. typed selects the v2 failure
// statuses (shutdown/corruption/poison classified for the client's
// typed-error mapping); v1 connections collapse every failure to
// StatusErr, which old clients understand.
func (s *Server) handleReq(out []byte, req Request, typed bool) ([]byte, bool) {
	fail := func(err error) []byte {
		status := StatusErr
		if typed {
			status = errStatus(err)
		}
		return EncodeResponse(out, status, []byte(err.Error()))
	}
	switch req.Op {
	case OpGet:
		v, ok, err := s.set.Get(req.Key)
		if err != nil {
			return fail(err), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], v)
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpPut:
		if err := s.set.Put(req.Key, req.Val); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpDel:
		ok, err := s.set.Del(req.Key)
		if err != nil {
			return fail(err), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpMGet, OpMPut, OpMDel:
		return s.handleBatch(out, req), false
	case OpScan:
		return s.handleScan(out, req, fail), false
	case OpScrub:
		return s.handleScrub(out, req, fail), false
	case OpInject:
		n, err := s.set.InjectFaults(int64(req.Key), int(req.Val))
		if err != nil {
			return fail(err), false
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], uint64(n))
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpStats:
		body, err := json.Marshal(s.set.Stats())
		if err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, body), false
	case OpSync:
		if err := s.set.Sync(); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpCrash:
		if err := s.set.CrashSave(int64(req.Key)); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), true
	case OpHello:
		// A HELLO after the first frame (or on a v1 connection) is a
		// protocol violation, not a switch point.
		return EncodeResponse(out, StatusErr, []byte("server: HELLO only negotiates as a connection's first frame")), false
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown op %d", req.Op))), false
	}
}

// handleScan executes one SCAN: a globally ordered, cross-shard merged
// range scan of up to limit pairs starting at max(lo, cursor). The
// response body is more(1 B), next-cursor(uint64 BE), then the pairs as
// (key value) uint64 BE records; see doc.go for cursor and consistency
// semantics.
func (s *Server) handleScan(out []byte, req Request, fail func(error) []byte) []byte {
	lo, hi := req.Key, req.Val
	if req.Cursor > lo {
		lo = req.Cursor
	}
	limit := int(req.Limit)
	if req.Limit == 0 || req.Limit > MaxScanPairs {
		limit = MaxScanPairs
	}
	pairs, next, more, err := s.set.Scan(lo, hi, limit)
	if err != nil {
		return fail(err)
	}
	out = append(out, StatusOK)
	if more {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint64(out, next)
	for _, pr := range pairs {
		out = binary.BigEndian.AppendUint64(out, pr.K)
		out = binary.BigEndian.AppendUint64(out, pr.V)
	}
	return out
}

// handleScrub executes one SCRUB. Mode 0 reads the maintenance
// subsystem's health without scrubbing anything; mode 1 additionally
// triggers a full pass on every shard — run as bounded incremental
// steps interleaved with each shard's client traffic, so even an
// operator-triggered pass never stalls the pool — and waits for it. The
// response body is the ScrubStatus JSON.
func (s *Server) handleScrub(out []byte, req Request, fail func(error) []byte) []byte {
	var st ScrubStatus
	switch req.Key {
	case 0:
	case 1:
		rep, err := s.set.Scrub()
		if err != nil {
			return fail(err)
		}
		st.Ran = true
		st.Report = rep
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown scrub mode %d", req.Key)))
	}
	st.Health = s.set.ScrubHealth()
	body, err := json.Marshal(st)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error()))
	}
	return EncodeResponse(out, StatusOK, body)
}

// handleBatch executes one MGET/MPUT/MDEL. The ops are partitioned by
// shard and each shard's slice commits as one transaction; the response
// carries a per-op record in request order (see doc.go for the body
// grammar).
func (s *Server) handleBatch(out []byte, req Request) []byte {
	ops := make([]shard.BatchOp, len(req.Keys))
	for i, k := range req.Keys {
		switch req.Op {
		case OpMGet:
			ops[i] = shard.BatchOp{Kind: shard.BatchGet, K: k}
		case OpMPut:
			ops[i] = shard.BatchOp{Kind: shard.BatchPut, K: k, V: req.Vals[i]}
		case OpMDel:
			ops[i] = shard.BatchOp{Kind: shard.BatchDel, K: k}
		}
	}
	res := s.set.Batch(ops)
	out = append(out, StatusOK)
	for _, r := range res {
		switch {
		case r.Err != nil:
			out = append(out, BatchErr)
		case !r.OK && req.Op != OpMPut:
			out = append(out, BatchNotFound)
		default:
			out = append(out, BatchOK)
		}
		if req.Op == OpMGet {
			out = binary.BigEndian.AppendUint64(out, r.V)
		}
	}
	return out
}
