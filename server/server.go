package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// Stats is the payload of a STATS response.
type Stats = shard.Stats

// Pair is one key/value pair in a SCAN response.
type Pair = shard.Pair

// ScrubHealth is the maintenance subsystem's health block, carried by
// both STATS (inside the shard stats) and SCRUB responses.
type ScrubHealth = shard.ScrubHealth

// ScrubStatus is the JSON payload of a SCRUB response: the set-wide
// maintenance health, plus — when the request asked for a pass — the
// merged report of the full pass it ran.
type ScrubStatus struct {
	// Ran reports whether this request ran a full pass (mode 1); with
	// mode 0 the response is health-only and Report is zero.
	Ran bool `json:"ran"`
	// Report is the merged full-pass report when Ran. Its
	// checksums_verified field says whether object checksums were
	// actually verified — false in checksum-less modes, where "0 bad
	// objects" must not be read as "verified clean".
	Report pangolin.ScrubReport `json:"report"`
	Health ScrubHealth          `json:"health"`
}

// Server serves the KV protocol over TCP on top of a shard.Set. It owns
// the network side only: the set is created and closed by the caller, so a
// simulated crash can abandon the set while the process decides how to
// die.
type Server struct {
	set *shard.Set

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closing atomic.Bool

	crashOnce sync.Once
	crashed   chan struct{}
}

// New wraps set in a server.
func New(set *shard.Set) *Server {
	return &Server{
		set:     set,
		conns:   make(map[net.Conn]struct{}),
		crashed: make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:7499"; port 0 picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr returns the bound address; call after Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown stops accepting, closes every connection, and waits for the
// handlers to finish. It does not touch the shard set.
func (s *Server) Shutdown() {
	s.closing.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Crashed is closed after an OpCrash request has written crash images for
// every shard. The process owner should then exit WITHOUT syncing the set,
// completing the simulated machine death.
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// serveConn runs one connection's request loop. Requests on a connection
// are processed in order; concurrency comes from concurrent connections.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var in, out []byte
	for {
		payload, err := ReadFrame(br, in)
		if err != nil {
			return // EOF or broken conn; nothing to answer
		}
		in = payload
		var crashed bool
		out, crashed = s.handle(out[:0], payload)
		if err := WriteFrame(bw, out); err != nil {
			return
		}
		// Flush eagerly unless the client has already pipelined more
		// requests onto the wire; always flush before announcing a
		// crash, since the announcement tears connections down.
		if br.Buffered() == 0 || crashed {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if crashed {
			// Signal only after the OK response is on the wire, so
			// the requesting client sees its answer before the
			// process owner starts killing connections.
			s.crashOnce.Do(func() { close(s.crashed) })
		}
	}
}

// handle executes one request payload and appends the response payload to
// out. The second result reports that this request was a successful
// OpCrash, which the connection loop announces after flushing.
func (s *Server) handle(out, payload []byte) ([]byte, bool) {
	req, err := DecodeRequest(payload)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error())), false
	}
	switch req.Op {
	case OpGet:
		v, ok, err := s.set.Get(req.Key)
		if err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], v)
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpPut:
		if err := s.set.Put(req.Key, req.Val); err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpDel:
		ok, err := s.set.Del(req.Key)
		if err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpMGet, OpMPut, OpMDel:
		return s.handleBatch(out, req), false
	case OpScan:
		return s.handleScan(out, req), false
	case OpScrub:
		return s.handleScrub(out, req), false
	case OpInject:
		n, err := s.set.InjectFaults(int64(req.Key), int(req.Val))
		if err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], uint64(n))
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpStats:
		body, err := json.Marshal(s.set.Stats())
		if err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		return EncodeResponse(out, StatusOK, body), false
	case OpSync:
		if err := s.set.Sync(); err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpCrash:
		if err := s.set.CrashSave(int64(req.Key)); err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error())), false
		}
		return EncodeResponse(out, StatusOK, nil), true
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown op %d", req.Op))), false
	}
}

// handleScan executes one SCAN: a globally ordered, cross-shard merged
// range scan of up to limit pairs starting at max(lo, cursor). The
// response body is more(1 B), next-cursor(uint64 BE), then the pairs as
// (key value) uint64 BE records; see doc.go for cursor and consistency
// semantics.
func (s *Server) handleScan(out []byte, req Request) []byte {
	lo, hi := req.Key, req.Val
	if req.Cursor > lo {
		lo = req.Cursor
	}
	limit := int(req.Limit)
	if req.Limit == 0 || req.Limit > MaxScanPairs {
		limit = MaxScanPairs
	}
	pairs, next, more, err := s.set.Scan(lo, hi, limit)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error()))
	}
	out = append(out, StatusOK)
	if more {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint64(out, next)
	for _, pr := range pairs {
		out = binary.BigEndian.AppendUint64(out, pr.K)
		out = binary.BigEndian.AppendUint64(out, pr.V)
	}
	return out
}

// handleScrub executes one SCRUB. Mode 0 reads the maintenance
// subsystem's health without scrubbing anything; mode 1 additionally
// triggers a full pass on every shard — run as bounded incremental
// steps interleaved with each shard's client traffic, so even an
// operator-triggered pass never stalls the pool — and waits for it. The
// response body is the ScrubStatus JSON.
func (s *Server) handleScrub(out []byte, req Request) []byte {
	var st ScrubStatus
	switch req.Key {
	case 0:
	case 1:
		rep, err := s.set.Scrub()
		if err != nil {
			return EncodeResponse(out, StatusErr, []byte(err.Error()))
		}
		st.Ran = true
		st.Report = rep
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown scrub mode %d", req.Key)))
	}
	st.Health = s.set.ScrubHealth()
	body, err := json.Marshal(st)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error()))
	}
	return EncodeResponse(out, StatusOK, body)
}

// handleBatch executes one MGET/MPUT/MDEL. The ops are partitioned by
// shard and each shard's slice commits as one transaction; the response
// carries a per-op record in request order (see doc.go for the body
// grammar).
func (s *Server) handleBatch(out []byte, req Request) []byte {
	ops := make([]shard.BatchOp, len(req.Keys))
	for i, k := range req.Keys {
		switch req.Op {
		case OpMGet:
			ops[i] = shard.BatchOp{Kind: shard.BatchGet, K: k}
		case OpMPut:
			ops[i] = shard.BatchOp{Kind: shard.BatchPut, K: k, V: req.Vals[i]}
		case OpMDel:
			ops[i] = shard.BatchOp{Kind: shard.BatchDel, K: k}
		}
	}
	res := s.set.Batch(ops)
	out = append(out, StatusOK)
	for _, r := range res {
		switch {
		case r.Err != nil:
			out = append(out, BatchErr)
		case !r.OK && req.Op != OpMPut:
			out = append(out, BatchNotFound)
		default:
			out = append(out, BatchOK)
		}
		if req.Op == OpMGet {
			out = binary.BigEndian.AppendUint64(out, r.V)
		}
	}
	return out
}
