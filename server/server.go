package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// Stats is the payload of a STATS response.
type Stats = shard.Stats

// Pair is one key/value pair in a SCAN response.
type Pair = shard.Pair

// ScrubHealth is the maintenance subsystem's health block, carried by
// both STATS (inside the shard stats) and SCRUB responses.
type ScrubHealth = shard.ScrubHealth

// ScrubStatus is the JSON payload of a SCRUB response: the set-wide
// maintenance health, plus — when the request asked for a pass — the
// merged report of the full pass it ran.
type ScrubStatus struct {
	// Ran reports whether this request ran a full pass (mode 1); with
	// mode 0 the response is health-only and Report is zero.
	Ran bool `json:"ran"`
	// Report is the merged full-pass report when Ran. Its
	// checksums_verified field says whether object checksums were
	// actually verified — false in checksum-less modes, where "0 bad
	// objects" must not be read as "verified clean".
	Report pangolin.ScrubReport `json:"report"`
	Health ScrubHealth          `json:"health"`
}

// Server serves the KV protocol over TCP on top of a shard.Set. It owns
// the network side only: the set is created and closed by the caller, so a
// simulated crash can abandon the set while the process decides how to
// die.
type Server struct {
	set *shard.Set

	mu      sync.Mutex
	ln      net.Listener
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
	closing atomic.Bool

	crashOnce sync.Once
	crashed   chan struct{}
}

// New wraps set in a server.
func New(set *shard.Set) *Server {
	return &Server{
		set:     set,
		conns:   make(map[net.Conn]struct{}),
		crashed: make(chan struct{}),
	}
}

// Listen binds addr (e.g. "127.0.0.1:7499"; port 0 picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr returns the bound address; call after Listen.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closing.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown stops accepting, closes every connection, and waits for the
// handlers to finish. It does not touch the shard set.
func (s *Server) Shutdown() {
	s.closing.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Crashed is closed after an OpCrash request has written crash images for
// every shard. The process owner should then exit WITHOUT syncing the set,
// completing the simulated machine death.
func (s *Server) Crashed() <-chan struct{} { return s.crashed }

// connSnaps is one connection's open-snapshot table: the SNAPSCAN ids
// this connection may continue, capped at MaxConnSnapshots so one
// client cannot pin unbounded version history. The table is the pin's
// lifetime bound — releaseAll runs when the connection ends (clean or
// dropped), so an abandoned paginated scan never leaks its pins past
// the connection.
type connSnaps struct {
	mu    sync.Mutex
	next  uint64
	snaps map[uint64]*shard.SetSnapshot
}

// add registers an opened snapshot, or fails at the cap (the caller
// releases the snapshot it could not register).
func (cs *connSnaps) add(sn *shard.SetSnapshot) (uint64, error) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if len(cs.snaps) >= MaxConnSnapshots {
		return 0, fmt.Errorf("server: connection already holds %d open snapshots (finish or abandon one first)", MaxConnSnapshots)
	}
	if cs.snaps == nil {
		cs.snaps = make(map[uint64]*shard.SetSnapshot)
	}
	cs.next++
	cs.snaps[cs.next] = sn
	return cs.next, nil
}

// get looks a continuation's snapshot up; nil when the id was never
// assigned or already released.
func (cs *connSnaps) get(id uint64) *shard.SetSnapshot {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.snaps[id]
}

// remove drops and releases one snapshot (idempotent).
func (cs *connSnaps) remove(id uint64) {
	cs.mu.Lock()
	sn := cs.snaps[id]
	delete(cs.snaps, id)
	cs.mu.Unlock()
	if sn != nil {
		sn.Release()
	}
}

// releaseAll drops every pin the connection still holds.
func (cs *connSnaps) releaseAll() {
	cs.mu.Lock()
	snaps := cs.snaps
	cs.snaps = nil
	cs.mu.Unlock()
	for _, sn := range snaps {
		sn.Release()
	}
}

// serveConn handles one connection. The first frame selects the
// protocol: a HELLO switches the connection to the pipelined v2 loop
// (sequence-numbered frames, out-of-order completion); anything else is
// served as v1 — the original one-op-per-frame, in-order protocol, kept
// as the degenerate case so old clients keep working unchanged.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	cs := &connSnaps{}
	defer cs.releaseAll() // dropped connections release their pins
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	first, err := ReadFrame(br, nil)
	if err != nil {
		return // EOF or broken conn; nothing to answer
	}
	if version, window, ok := DecodeHello(first); ok {
		s.servePipelined(br, bw, version, window, cs)
		return
	}
	s.serveV1(br, bw, first, cs)
}

// serveV1 runs the in-order request loop: decode, execute, reply, one
// request at a time. first is the already-read opening frame. Requests
// on a v1 connection are answered in order; concurrency comes from
// concurrent connections.
//
// The loop owns three reusable per-connection buffers — the inbound
// frame, the decoded request's key/value slices, and the outbound
// frame (length prefix included, so each response is one Write) — so a
// long-lived v1 connection's steady state allocates nothing in this
// loop. The reuse is sound only because the loop is synchronous:
// handleReq returns before the next decode overwrites the request's
// slices, mirroring the pool's ownership contract (doc.go).
func (s *Server) serveV1(br *bufio.Reader, bw *bufio.Writer, first []byte, cs *connSnaps) {
	in := first
	var (
		out []byte
		req Request
	)
	for {
		if len(in) > 0 && in[0] == OpBackup {
			// BACKUP streams multiple frames, which only the v1 loop's
			// direct writer access can carry; it owns the connection until
			// the terminal frame.
			if err := s.handleBackup(bw, in); err != nil {
				return
			}
			payload, err := ReadFrame(br, in)
			if err != nil {
				return
			}
			in = payload
			continue
		}
		var crashed bool
		out = append(out[:0], 0, 0, 0, 0)
		if err := decodeRequestInto(in, &req); err != nil {
			out = EncodeResponse(out, StatusErr, []byte(err.Error()))
		} else {
			out, crashed = s.handleReq(out, req, false, cs)
		}
		if len(out)-frameHeaderLen > MaxFrame {
			return
		}
		if _, err := bw.Write(finishFrame(out)); err != nil {
			return
		}
		// Flush eagerly unless the client has already pipelined more
		// requests onto the wire; always flush before announcing a
		// crash, since the announcement tears connections down.
		if br.Buffered() == 0 || crashed {
			if err := bw.Flush(); err != nil {
				return
			}
		}
		if crashed {
			// Signal only after the OK response is on the wire, so
			// the requesting client sees its answer before the
			// process owner starts killing connections.
			s.crashOnce.Do(func() { close(s.crashed) })
		}
		payload, err := ReadFrame(br, in)
		if err != nil {
			return
		}
		in = payload
	}
}

// completion is one finished v2 request on its way to the wire. The
// frame is pooled: it is owned by the completing goroutine until it
// lands on the completions channel, then by the writer, which recycles
// it the moment the bytes reach the bufio layer (see pool.go and the
// ownership contract in doc.go).
type completion struct {
	f     *frameBuf // [len][seq + status + body], ready for one Write
	crash bool      // a successful OpCrash: flush, then announce
}

// pipeConn is the per-connection state of a pipelined v2 session: the
// in-flight window semaphore the reader acquires per request (and the
// writer releases once the reply is on the wire) and the completion
// channel between op completion and the writer goroutine. The channel's
// capacity equals the window, and every in-flight op holds exactly one
// window slot, so completing an op NEVER blocks — a shard worker
// goroutine invoking a completion callback cannot be stalled by a slow
// connection.
type pipeConn struct {
	s           *Server
	sem         chan struct{}
	completions chan completion
	inflight    sync.WaitGroup
}

// complete finishes one request with a status and body, encoding the
// whole frame (length prefix, echoed sequence, status, body) into one
// pooled buffer. body is copied, so callers may pass stack memory.
func (pc *pipeConn) complete(seq uint64, status uint8, body []byte) {
	f := getFrame()
	b := appendU64(beginFrame(f), seq)
	b = append(b, status)
	b = append(b, body...)
	f.b = finishFrame(b)
	pc.push(f, false)
}

// completeErr finishes one request with a typed failure status.
func (pc *pipeConn) completeErr(seq uint64, err error) {
	pc.complete(seq, errStatus(err), []byte(err.Error()))
}

// push hands a finished frame to the writer and retires the request
// from the in-flight count. The frame is the writer's after this; the
// completing goroutine must not touch it again.
func (pc *pipeConn) push(f *frameBuf, crash bool) {
	pc.completions <- completion{f: f, crash: crash}
	pc.inflight.Done()
}

// writeLoop is the per-connection writer goroutine: it streams
// completions to the wire in the order they land — which is completion
// order, not request order. Ready completions coalesce: the inner loop
// drains everything already queued into the bufio layer and pays one
// Flush when the queue goes empty, so a burst of completions costs one
// syscall, not one wakeup+flush each. Each completion's window slot is
// released once its reply is written, and its frame returns to the
// pool. A write error marks the connection dead but the loop keeps
// draining (and discarding), so in-flight completion callbacks can
// never block on a broken connection.
func (pc *pipeConn) writeLoop(bw *bufio.Writer, done chan struct{}) {
	defer close(done)
	dead := false
	for c := range pc.completions {
		for {
			if !dead {
				if _, err := bw.Write(c.f.b); err != nil {
					dead = true
				}
			}
			crash := c.crash
			putFrame(c.f)
			if crash && !dead {
				// As on the v1 path: announce only after the OK response
				// is on the wire, so the requesting client sees its
				// answer before the process owner starts killing
				// connections.
				if err := bw.Flush(); err != nil {
					dead = true
				} else {
					pc.s.crashOnce.Do(func() { close(pc.s.crashed) })
				}
			}
			<-pc.sem
			var ok bool
			select {
			case c, ok = <-pc.completions:
				if ok {
					continue
				}
				// Channel closed while draining: everything is written,
				// flush and exit.
				if !dead {
					bw.Flush()
				}
				return
			default:
			}
			break
		}
		// Queue drained: one Flush covers the whole run of completions.
		if !dead {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
}

// servePipelined runs one v2 session after its HELLO: a reader loop
// (this goroutine) that decodes frames and dispatches them for
// asynchronous completion, and a writer goroutine that streams replies
// as they complete. The in-flight window is the negotiated one: when a
// connection has window ops outstanding the reader simply stops reading
// — TCP backpressure is the overload behavior, and the window bounds
// the per-connection completion memory. On connection loss or server
// shutdown every dispatched op still resolves (the writer drains what
// it cannot send), so no completion callback is ever left dangling.
func (s *Server) servePipelined(br *bufio.Reader, bw *bufio.Writer, version, reqWindow uint64, cs *connSnaps) {
	if version != ProtocolV2 {
		resp := EncodeResponse(nil, StatusErr, []byte(fmt.Sprintf("server: unsupported protocol version %d", version)))
		if WriteFrame(bw, resp) == nil {
			bw.Flush()
		}
		return
	}
	win := GrantWindow(reqWindow)
	ack := appendU64(appendU64(nil, ProtocolV2), uint64(win))
	if WriteFrame(bw, EncodeResponse(nil, StatusOK, ack)) != nil {
		return
	}
	if bw.Flush() != nil {
		return
	}
	pc := &pipeConn{
		s:           s,
		sem:         make(chan struct{}, win),
		completions: make(chan completion, win),
	}
	writerDone := make(chan struct{})
	go pc.writeLoop(bw, writerDone)
	var in []byte
	for {
		payload, err := ReadFrame(br, in)
		if err != nil {
			break
		}
		in = payload
		seq, req, err := DecodeRequestSeq(payload)
		if err != nil && len(payload) < 8 {
			break // no sequence number to echo: corrupt stream, drop
		}
		pc.sem <- struct{}{} // in-flight window: blocks when full
		pc.inflight.Add(1)
		if err != nil {
			pc.complete(seq, StatusErr, []byte(err.Error()))
			continue
		}
		s.dispatch(pc, seq, req, cs)
	}
	// No more requests (EOF, broken conn, or corrupt stream). Every
	// dispatched op still completes; wait for them, then let the writer
	// drain its queue and exit.
	pc.inflight.Wait()
	close(pc.completions)
	<-writerDone
}

// dispatch routes one v2 request for asynchronous completion. Single-key
// data ops feed the shard layer directly: writes go straight into the
// shard worker queue (whose group-commit drain folds queued ops into
// one transaction — the reason deep pipelines produce big groups), and
// GETs run the concurrent verified-read fast path inline on this
// handler goroutine, falling back to the queue. The remaining verbs
// block on multi-shard fan-outs, so each runs on its own goroutine,
// bounded by the in-flight window.
func (s *Server) dispatch(pc *pipeConn, seq uint64, req Request, cs *connSnaps) {
	switch req.Op {
	case OpGet:
		s.set.SubmitGet(req.Key, func(r shard.BatchResult) {
			switch {
			case r.Err != nil:
				pc.completeErr(seq, r.Err)
			case !r.OK:
				pc.complete(seq, StatusNotFound, nil)
			default:
				var body [8]byte
				binary.BigEndian.PutUint64(body[:], r.V)
				pc.complete(seq, StatusOK, body[:])
			}
		})
	case OpPut:
		s.set.SubmitPut(req.Key, req.Val, func(r shard.BatchResult) {
			if r.Err != nil {
				pc.completeErr(seq, r.Err)
				return
			}
			pc.complete(seq, StatusOK, nil)
		})
	case OpDel:
		s.set.SubmitDel(req.Key, func(r shard.BatchResult) {
			switch {
			case r.Err != nil:
				pc.completeErr(seq, r.Err)
			case !r.OK:
				pc.complete(seq, StatusNotFound, nil)
			default:
				pc.complete(seq, StatusOK, nil)
			}
		})
	default:
		go func() {
			f := getFrame()
			b := appendU64(beginFrame(f), seq)
			b, crashed := s.handleReq(b, req, true, cs)
			f.b = finishFrame(b)
			pc.push(f, crashed)
		}()
	}
}

// handleReq executes one decoded request. typed selects the v2 failure
// statuses (shutdown/corruption/poison classified for the client's
// typed-error mapping); v1 connections collapse every failure to
// StatusErr, which old clients understand.
func (s *Server) handleReq(out []byte, req Request, typed bool, cs *connSnaps) ([]byte, bool) {
	fail := func(err error) []byte {
		status := StatusErr
		if typed {
			status = errStatus(err)
		}
		return EncodeResponse(out, status, []byte(err.Error()))
	}
	switch req.Op {
	case OpGet:
		v, ok, err := s.set.Get(req.Key)
		if err != nil {
			return fail(err), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		var body [8]byte
		binary.BigEndian.PutUint64(body[:], v)
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpPut:
		if err := s.set.Put(req.Key, req.Val); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpDel:
		ok, err := s.set.Del(req.Key)
		if err != nil {
			return fail(err), false
		}
		if !ok {
			return EncodeResponse(out, StatusNotFound, nil), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpMGet, OpMPut, OpMDel:
		return s.handleBatch(out, req), false
	case OpScan:
		return s.handleScan(out, req, fail), false
	case OpSnapScan:
		// New op, so every failure uses the typed statuses on both
		// protocol versions — no pre-existing v1 decoder to protect.
		return s.handleSnapScan(out, req, cs), false
	case OpBackup:
		// The v1 loop intercepts BACKUP before handleReq; reaching it here
		// means a v2 connection asked, whose one-reply-per-sequence
		// contract cannot carry a multi-frame stream.
		return EncodeResponse(out, StatusErr, []byte("server: BACKUP streams multiple frames and requires a v1 connection")), false
	case OpScrub:
		return s.handleScrub(out, req, fail), false
	case OpInject:
		injected, capable, err := s.set.InjectFaults(int64(req.Key), int(req.Val))
		if err != nil {
			return fail(err), false
		}
		// Capability info rides with the count: injected(8) capable(8)
		// total(8), so "0 injected" is distinguishable as "nothing live to
		// corrupt yet, retry" (capable > 0) vs "these backends cannot
		// inject" (capable == 0, retrying is futile).
		var body [24]byte
		binary.BigEndian.PutUint64(body[0:], uint64(injected))
		binary.BigEndian.PutUint64(body[8:], uint64(capable))
		binary.BigEndian.PutUint64(body[16:], uint64(s.set.Len()))
		return EncodeResponse(out, StatusOK, body[:]), false
	case OpStats:
		body, err := json.Marshal(s.set.Stats())
		if err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, body), false
	case OpSync:
		if err := s.set.Sync(); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), false
	case OpCrash:
		if err := s.set.CrashSave(int64(req.Key)); err != nil {
			return fail(err), false
		}
		return EncodeResponse(out, StatusOK, nil), true
	case OpHello:
		// A HELLO after the first frame (or on a v1 connection) is a
		// protocol violation, not a switch point.
		return EncodeResponse(out, StatusErr, []byte("server: HELLO only negotiates as a connection's first frame")), false
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown op %d", req.Op))), false
	}
}

// handleScan executes one SCAN: a globally ordered, cross-shard merged
// range scan of up to limit pairs starting at max(lo, cursor). The
// response body is more(1 B), next-cursor(uint64 BE), then the pairs as
// (key value) uint64 BE records; see doc.go for cursor and consistency
// semantics.
func (s *Server) handleScan(out []byte, req Request, fail func(error) []byte) []byte {
	lo, hi := req.Key, req.Val
	if req.Cursor > lo {
		lo = req.Cursor
	}
	limit := int(req.Limit)
	if req.Limit == 0 || req.Limit > MaxScanPairs {
		limit = MaxScanPairs
	}
	pairs, next, more, err := s.set.Scan(lo, hi, limit)
	if err != nil {
		return fail(err)
	}
	out = append(out, StatusOK)
	if more {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint64(out, next)
	for _, pr := range pairs {
		out = binary.BigEndian.AppendUint64(out, pr.K)
		out = binary.BigEndian.AppendUint64(out, pr.V)
	}
	return out
}

// handleSnapScan executes one SNAPSCAN page. snapid 0 with cursor 0
// opens a fresh snapshot on the connection (pinning every shard's
// current generation) and serves its first page; the response names the
// snapshot, and continuations present that snapid with the returned
// cursor. The terminal page (more=0) releases the snapshot, as does any
// page-serving failure that proves it dead (ErrSnapshotTooOld); an
// abandoned scan's pins fall with the connection. snapid 0 with a
// nonzero cursor is a cursor-mode violation — a snapshot continuation
// that lost its snapshot must not silently degrade to a live page.
//
// Response body: snapid(8 B), more(1 B), next-cursor(8 B), then the
// pairs as (key value) uint64 BE records.
func (s *Server) handleSnapScan(out []byte, req Request, cs *connSnaps) []byte {
	fail := func(err error) []byte {
		return EncodeResponse(out, errStatus(err), []byte(err.Error()))
	}
	lo, hi := req.Key, req.Val
	limit := int(req.Limit)
	if req.Limit == 0 || req.Limit > MaxScanPairs {
		limit = MaxScanPairs
	}
	id := req.SnapID
	var sn *shard.SetSnapshot
	if id == 0 {
		if req.Cursor != 0 {
			return fail(fmt.Errorf("server: snapshot continuation (cursor %d) without its snapshot id: %w", req.Cursor, ErrCursorMode))
		}
		opened, err := s.set.OpenSnapshot()
		if err != nil {
			return fail(err)
		}
		id, err = cs.add(opened)
		if err != nil {
			opened.Release()
			return fail(err)
		}
		sn = opened
	} else if sn = cs.get(id); sn == nil {
		return fail(fmt.Errorf("server: snapshot %d is not open on this connection: %w", id, ErrCursorMode))
	}
	if req.Cursor > lo {
		lo = req.Cursor
	}
	pairs, next, more, err := sn.Scan(lo, hi, limit)
	if err != nil {
		if errors.Is(err, ErrSnapshotTooOld) {
			cs.remove(id) // the pin is gone; drop the table entry too
		}
		return fail(err)
	}
	if !more {
		cs.remove(id) // terminal page: the scan is complete, release the pins
	}
	out = append(out, StatusOK)
	out = binary.BigEndian.AppendUint64(out, id)
	if more {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = binary.BigEndian.AppendUint64(out, next)
	for _, pr := range pairs {
		out = binary.BigEndian.AppendUint64(out, pr.K)
		out = binary.BigEndian.AppendUint64(out, pr.V)
	}
	return out
}

// backupFramePairs caps the pairs per BACKUP stream frame, sized so a
// frame stays well under MaxFrame (16 bytes a pair plus the 2-byte
// status/more header).
const backupFramePairs = 4096

// handleBackup streams the whole keyspace at one pinned snapshot as a
// sequence of frames on a v1 connection: each frame is status(1 B),
// more(1 B), then (key value) pairs; the terminal frame carries more=0.
// The snapshot opens when the request arrives and releases when the
// stream ends (complete or failed), so a full-pool backup taken under
// sustained writes is one generation-consistent image — restoring it
// yields exactly the committed state at the moment the backup began. A
// failure mid-stream ends the stream with a typed non-OK frame, never a
// silent truncation. The returned error reports wire failures only (the
// caller drops the connection); server-side failures travel in-band.
func (s *Server) handleBackup(bw *bufio.Writer, payload []byte) error {
	sendErr := func(err error) error {
		frame := EncodeResponse(nil, errStatus(err), []byte(err.Error()))
		if werr := WriteFrame(bw, frame); werr != nil {
			return werr
		}
		return bw.Flush()
	}
	if _, err := DecodeRequest(payload); err != nil {
		return sendErr(err)
	}
	sn, err := s.set.OpenSnapshot()
	if err != nil {
		return sendErr(err)
	}
	defer sn.Release()
	var (
		cursor uint64
		out    []byte
	)
	for {
		pairs, next, more, err := sn.Scan(cursor, ^uint64(0), backupFramePairs)
		if err != nil {
			return sendErr(err)
		}
		out = out[:0]
		out = append(out, StatusOK)
		if more {
			out = append(out, 1)
		} else {
			out = append(out, 0)
		}
		for _, pr := range pairs {
			out = binary.BigEndian.AppendUint64(out, pr.K)
			out = binary.BigEndian.AppendUint64(out, pr.V)
		}
		if err := WriteFrame(bw, out); err != nil {
			return err
		}
		if !more {
			return bw.Flush()
		}
		cursor = next
	}
}

// handleScrub executes one SCRUB. Mode 0 reads the maintenance
// subsystem's health without scrubbing anything; mode 1 additionally
// triggers a full pass on every shard — run as bounded incremental
// steps interleaved with each shard's client traffic, so even an
// operator-triggered pass never stalls the pool — and waits for it. The
// response body is the ScrubStatus JSON.
func (s *Server) handleScrub(out []byte, req Request, fail func(error) []byte) []byte {
	var st ScrubStatus
	switch req.Key {
	case 0:
	case 1:
		rep, err := s.set.Scrub()
		if err != nil {
			return fail(err)
		}
		st.Ran = true
		st.Report = rep
	default:
		return EncodeResponse(out, StatusErr, []byte(fmt.Sprintf("unknown scrub mode %d", req.Key)))
	}
	st.Health = s.set.ScrubHealth()
	body, err := json.Marshal(st)
	if err != nil {
		return EncodeResponse(out, StatusErr, []byte(err.Error()))
	}
	return EncodeResponse(out, StatusOK, body)
}

// batchOpsPool recycles the shard.BatchOp staging slice handleBatch
// builds per MGET/MPUT/MDEL; Set.Batch consumes it before returning,
// so the slice is free again by the time the response encodes.
var batchOpsPool = sync.Pool{New: func() any { return new([]shard.BatchOp) }}

// handleBatch executes one MGET/MPUT/MDEL. The ops are partitioned by
// shard and each shard's slice commits as one transaction; the response
// carries a per-op record in request order (see doc.go for the body
// grammar).
func (s *Server) handleBatch(out []byte, req Request) []byte {
	opsp := batchOpsPool.Get().(*[]shard.BatchOp)
	ops := (*opsp)[:0]
	for i, k := range req.Keys {
		switch req.Op {
		case OpMGet:
			ops = append(ops, shard.BatchOp{Kind: shard.BatchGet, K: k})
		case OpMPut:
			ops = append(ops, shard.BatchOp{Kind: shard.BatchPut, K: k, V: req.Vals[i]})
		case OpMDel:
			ops = append(ops, shard.BatchOp{Kind: shard.BatchDel, K: k})
		}
	}
	res := s.set.Batch(ops)
	*opsp = ops[:0]
	batchOpsPool.Put(opsp)
	out = append(out, StatusOK)
	for _, r := range res {
		switch {
		case r.Err != nil:
			out = append(out, BatchErr)
		case !r.OK && req.Op != OpMPut:
			out = append(out, BatchNotFound)
		default:
			out = append(out, BatchOK)
		}
		if req.Op == OpMGet {
			out = binary.BigEndian.AppendUint64(out, r.V)
		}
	}
	return out
}
