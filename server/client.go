package server

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
)

// ErrClientClosed reports use of a closed Client.
var ErrClientClosed = errors.New("server: client closed")

// Client is a synchronous connection to a KV server. One Client serves one
// goroutine at a time; open one Client per concurrent worker (the load
// generator's closed-loop clients do exactly that).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	buf  []byte // reusable frame buffer
}

// Dial connects to a KV server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
	}, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends req and returns the response status and body. The body
// aliases the client's reusable buffer: it is valid until the next call.
func (c *Client) roundTrip(req Request) (uint8, []byte, error) {
	if c.conn == nil {
		return 0, nil, ErrClientClosed
	}
	payload, err := EncodeRequest(c.buf[:0], req)
	if err != nil {
		return 0, nil, err
	}
	if err := WriteFrame(c.bw, payload); err != nil {
		return 0, nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, nil, err
	}
	resp, err := ReadFrame(c.br, payload[:0])
	if err != nil {
		return 0, nil, err
	}
	c.buf = resp
	status, body, err := DecodeResponse(resp)
	if err != nil {
		return 0, nil, err
	}
	if status == StatusErr {
		return status, nil, fmt.Errorf("server: %s", body)
	}
	return status, body, nil
}

// Get fetches the value for k.
func (c *Client) Get(k uint64) (uint64, bool, error) {
	status, body, err := c.roundTrip(Request{Op: OpGet, Key: k})
	if err != nil {
		return 0, false, err
	}
	if status == StatusNotFound {
		return 0, false, nil
	}
	if len(body) != 8 {
		return 0, false, fmt.Errorf("server: GET response body of %d bytes", len(body))
	}
	return binary.BigEndian.Uint64(body), true, nil
}

// Put inserts or updates k.
func (c *Client) Put(k, v uint64) error {
	_, _, err := c.roundTrip(Request{Op: OpPut, Key: k, Val: v})
	return err
}

// Del removes k, reporting whether it was present.
func (c *Client) Del(k uint64) (bool, error) {
	status, _, err := c.roundTrip(Request{Op: OpDel, Key: k})
	if err != nil {
		return false, err
	}
	return status == StatusOK, nil
}

// MGet fetches many keys in one round trip; the server group-commits each
// shard's slice. It returns values and presence flags in key order.
func (c *Client) MGet(keys []uint64) ([]uint64, []bool, error) {
	status, body, err := c.roundTrip(Request{Op: OpMGet, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if status != StatusOK || len(body) != 9*len(keys) {
		return nil, nil, fmt.Errorf("server: MGET response status %d, body %d bytes for %d keys",
			status, len(body), len(keys))
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	for i := range keys {
		rec := body[i*9:]
		switch rec[0] {
		case BatchOK:
			found[i] = true
			vals[i] = binary.BigEndian.Uint64(rec[1:])
		case BatchNotFound:
		default:
			return nil, nil, fmt.Errorf("server: MGET op %d (key %d) failed", i, keys[i])
		}
	}
	return vals, found, nil
}

// MPut inserts or updates many pairs in one round trip; each shard's
// slice commits as one transaction. A non-nil error reports the first
// failed op (the others are unaffected — see the batch semantics in the
// package documentation).
func (c *Client) MPut(keys, vals []uint64) error {
	status, body, err := c.roundTrip(Request{Op: OpMPut, Keys: keys, Vals: vals})
	if err != nil {
		return err
	}
	if status != StatusOK || len(body) != len(keys) {
		return fmt.Errorf("server: MPUT response status %d, body %d bytes for %d ops",
			status, len(body), len(keys))
	}
	for i, st := range body {
		if st != BatchOK {
			return fmt.Errorf("server: MPUT op %d (key %d) failed", i, keys[i])
		}
	}
	return nil
}

// MDel removes many keys in one round trip; each shard's slice commits
// as one transaction. It reports per-key presence in key order.
func (c *Client) MDel(keys []uint64) ([]bool, error) {
	status, body, err := c.roundTrip(Request{Op: OpMDel, Keys: keys})
	if err != nil {
		return nil, err
	}
	if status != StatusOK || len(body) != len(keys) {
		return nil, fmt.Errorf("server: MDEL response status %d, body %d bytes for %d ops",
			status, len(body), len(keys))
	}
	present := make([]bool, len(keys))
	for i, st := range body {
		switch st {
		case BatchOK:
			present[i] = true
		case BatchNotFound:
		default:
			return nil, fmt.Errorf("server: MDEL op %d (key %d) failed", i, keys[i])
		}
	}
	return present, nil
}

// Scan fetches up to limit pairs with keys in [lo, hi] in ascending key
// order, resuming from cursor (pass 0 to start at lo, then the returned
// next while more is true). limit 0 (or beyond MaxScanPairs) asks for a
// full MaxScanPairs frame. Consistency is per server-side chunk — each
// chunk is a committed image of its shard, but a paginated scan is not a
// point-in-time snapshot across pages or shards (see the package
// documentation).
func (c *Client) Scan(lo, hi uint64, limit int, cursor uint64) (pairs []Pair, next uint64, more bool, err error) {
	status, body, err := c.roundTrip(Request{
		Op: OpScan, Key: lo, Val: hi, Limit: uint64(limit), Cursor: cursor,
	})
	if err != nil {
		return nil, 0, false, err
	}
	if status != StatusOK || len(body) < 9 || (len(body)-9)%16 != 0 {
		return nil, 0, false, fmt.Errorf("server: SCAN response status %d, body %d bytes", status, len(body))
	}
	more = body[0] == 1
	next = binary.BigEndian.Uint64(body[1:])
	n := (len(body) - 9) / 16
	pairs = make([]Pair, n)
	for i := 0; i < n; i++ {
		rec := body[9+i*16:]
		pairs[i] = Pair{K: binary.BigEndian.Uint64(rec), V: binary.BigEndian.Uint64(rec[8:])}
	}
	return pairs, next, more, nil
}

// ScanAll paginates Scan until the range is exhausted, calling fn for
// every pair in ascending key order; fn returning false stops the scan.
func (c *Client) ScanAll(lo, hi uint64, fn func(k, v uint64) bool) error {
	cursor := uint64(0)
	for {
		pairs, next, more, err := c.Scan(lo, hi, 0, cursor)
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			if !fn(pr.K, pr.V) {
				return nil
			}
		}
		if !more {
			return nil
		}
		cursor = next
	}
}

// Scrub reads the server's maintenance health and, when run is set,
// first triggers a full scrubbing pass across every shard and waits for
// it. The pass executes as bounded incremental steps interleaved with
// live traffic on each shard; the returned status carries its merged
// report (check Report.ChecksumsVerified before reading "0 bad objects"
// as "verified clean") plus the scrub health counters.
func (c *Client) Scrub(run bool) (ScrubStatus, error) {
	var st ScrubStatus
	mode := uint64(0)
	if run {
		mode = 1
	}
	_, body, err := c.roundTrip(Request{Op: OpScrub, Key: mode})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("server: decoding scrub status: %w", err)
	}
	return st, nil
}

// Inject asks the server to corrupt count pseudo-randomly chosen live
// objects across the shards (scribbles and media-error poison,
// alternating by seed) — the fault-injection hook behind the loadtest's
// corruption-healing phase. It returns how many objects were actually
// corrupted. Like CRASH, this is a test harness op, not a production
// verb.
func (c *Client) Inject(seed int64, count int) (uint64, error) {
	status, body, err := c.roundTrip(Request{Op: OpInject, Key: uint64(seed), Val: uint64(count)})
	if err != nil {
		return 0, err
	}
	if status != StatusOK || len(body) != 8 {
		return 0, fmt.Errorf("server: INJECT response status %d, body %d bytes", status, len(body))
	}
	return binary.BigEndian.Uint64(body), nil
}

// Stats fetches the server's shard statistics.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	_, body, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("server: decoding stats: %w", err)
	}
	return st, nil
}

// Sync asks the server to save every shard snapshot.
func (c *Client) Sync() error {
	_, _, err := c.roundTrip(Request{Op: OpSync})
	return err
}

// Crash asks the server to simulate a machine crash: every shard file is
// replaced with a crash image, and the server process is expected to die
// without syncing. The call returns once the images are written.
func (c *Client) Crash(seed int64) error {
	_, _, err := c.roundTrip(Request{Op: OpCrash, Key: uint64(seed)})
	return err
}
