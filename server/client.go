package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// options collects the dial-time knobs; see the With… Option helpers.
type options struct {
	depth       int           // requested in-flight window (0 → server default)
	dialTimeout time.Duration // connect timeout (0 → ctx only)
	reqTimeout  time.Duration // per-op wait ceiling when ctx has no deadline
	v1          bool          // speak legacy protocol v1 (no HELLO, in-order)
}

// Option configures a Client at Dial time.
type Option func(*options)

// WithPipelineDepth requests an in-flight window of n operations: the
// client keeps at most n requests outstanding on the wire at once. The
// server grants min(n, MaxWindow) — the handshake reply carries the
// grant — and the client honors the granted value. n <= 0 asks for the
// server's default (DefaultWindow). Depth 1 degenerates to lockstep
// request/reply; deeper windows keep shard group-commit batches full.
func WithPipelineDepth(n int) Option {
	return func(o *options) { o.depth = n }
}

// WithDialTimeout bounds the TCP connect (and v2 handshake) time,
// composing with any deadline already on the Dial context.
func WithDialTimeout(d time.Duration) Option {
	return func(o *options) { o.dialTimeout = d }
}

// WithRequestTimeout sets a default per-operation wait ceiling, applied
// whenever the operation's context has no deadline of its own. Zero
// (the default) waits indefinitely. A timed-out wait abandons the wait
// only — the operation stays in flight and its window slot is released
// when the server's reply eventually arrives.
func WithRequestTimeout(d time.Duration) Option {
	return func(o *options) { o.reqTimeout = d }
}

// WithProtocolV1 skips the HELLO handshake and speaks the legacy
// in-order protocol. The client still pipelines — v1 replies arrive in
// request order, so matching is FIFO instead of by sequence number —
// but all failures collapse to untyped errors, as v1 servers report
// them. Mainly a compatibility and test hook.
func WithProtocolV1() Option {
	return func(o *options) { o.v1 = true }
}

// clientOp is one in-flight operation: its encoded request frame on the
// way out, and its resolution (status+body or error) on the way back.
// done closes exactly once, after which status/body/err are immutable.
//
// frame is pooled (see pool.go): submit owns it until the op lands on
// sendq, the writer owns it from there and recycles it as soon as the
// bytes reach the bufio layer. Nothing reads frame after that hand-off.
// Reply bodies are copied out of the reader's reused frame buffer —
// small ones into the op's inline array — so body is an owned copy,
// valid forever.
type clientOp struct {
	seq     uint64
	frame   *frameBuf // [len][seq?][request], ready for one Write
	status  uint8
	body    []byte // owned copy; valid forever
	err     error
	done    chan struct{}
	bodyArr [24]byte // inline storage for small reply bodies (GET = 8 B)
}

// Client is a pipelined connection to a KV server. It is safe for
// concurrent use by any number of goroutines: each call claims a slot
// in the connection's in-flight window, ships its frame, and waits for
// the matching reply — many calls overlap on one connection, which is
// exactly what keeps the server's group-commit batches full. The
// synchronous methods (Get, Put, …) keep their original signatures;
// GetAsync/PutAsync/DelAsync and Pipeline expose the same window
// without blocking per call.
//
// A wire or protocol failure is fatal to the connection: every
// in-flight and future operation resolves with the error (never a
// silent drop), and Err reports it.
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer

	v2         bool
	window     int           // granted in-flight window
	reqTimeout time.Duration // see WithRequestTimeout

	sem   chan struct{}  // one slot per in-flight op
	sendq chan *clientOp // submit → writer goroutine
	fatal chan struct{}  // closed once, when the client dies

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*clientOp // v2: seq → op
	fifo    []*clientOp          // v1: replies arrive in request order
	err     error                // fatal error; nil while healthy
	closed  bool

	readerDone chan struct{}
	writerDone chan struct{}
}

// Dial connects to a KV server and, unless WithProtocolV1 is given,
// performs the HELLO handshake that switches the connection to the
// pipelined v2 protocol. ctx bounds the connect and handshake;
// per-operation deadlines come from the operation contexts (or
// WithRequestTimeout).
func Dial(ctx context.Context, addr string, opts ...Option) (*Client, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	d := net.Dialer{Timeout: o.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReader(conn),
		bw:         bufio.NewWriter(conn),
		v2:         !o.v1,
		reqTimeout: o.reqTimeout,
		fatal:      make(chan struct{}),
		pending:    make(map[uint64]*clientOp),
		readerDone: make(chan struct{}),
		writerDone: make(chan struct{}),
	}
	if c.v2 {
		win, err := c.hello(ctx, o)
		if err != nil {
			conn.Close()
			return nil, err
		}
		c.window = win
	} else {
		c.window = o.depth
		if c.window <= 0 {
			c.window = DefaultWindow
		}
	}
	// Capacity invariant: every op in sendq holds a window slot, so a
	// submit that owns a slot can always enqueue without blocking.
	c.sem = make(chan struct{}, c.window)
	c.sendq = make(chan *clientOp, c.window)
	go c.readLoop()
	go c.writeLoop()
	return c, nil
}

// hello runs the v2 handshake on the fresh connection: one HELLO frame
// out, one v1-framed ACK back carrying the negotiated version and the
// granted window.
func (c *Client) hello(ctx context.Context, o options) (int, error) {
	if o.dialTimeout > 0 {
		c.conn.SetDeadline(time.Now().Add(o.dialTimeout))
	} else if dl, ok := ctx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	}
	defer c.conn.SetDeadline(time.Time{})
	req := Request{Op: OpHello, Key: HelloMagic, Val: ProtocolV2}
	if o.depth > 0 {
		req.Limit = uint64(o.depth)
	}
	payload, err := EncodeRequest(nil, req)
	if err != nil {
		return 0, err
	}
	if err := WriteFrame(c.bw, payload); err != nil {
		return 0, err
	}
	if err := c.bw.Flush(); err != nil {
		return 0, err
	}
	resp, err := ReadFrame(c.br, nil)
	if err != nil {
		return 0, fmt.Errorf("server: reading HELLO ack: %w", err)
	}
	status, body, err := DecodeResponse(resp)
	if err != nil {
		return 0, err
	}
	if status != StatusOK {
		return 0, fmt.Errorf("server: HELLO rejected: %s", body)
	}
	if len(body) != 16 {
		return 0, fmt.Errorf("server: HELLO ack body of %d bytes", len(body))
	}
	version := binary.BigEndian.Uint64(body)
	win := binary.BigEndian.Uint64(body[8:])
	if version != ProtocolV2 || win == 0 || win > MaxWindow {
		return 0, fmt.Errorf("server: HELLO ack negotiated version %d, window %d", version, win)
	}
	return int(win), nil
}

// ProtocolVersion reports the negotiated wire protocol: 2 after a HELLO
// handshake, 1 under WithProtocolV1.
func (c *Client) ProtocolVersion() uint64 {
	if c.v2 {
		return ProtocolV2
	}
	return 1
}

// Window reports the in-flight window this connection operates under —
// the server's grant on v2, the requested depth on v1.
func (c *Client) Window() int { return c.window }

// Err reports the connection's fatal error: nil while the client is
// healthy, the first wire or protocol failure once it dies, and
// ErrClientClosed after Close.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Close tears the connection down. Every in-flight operation resolves
// with ErrClientClosed — never a silent drop — and Close returns once
// the connection's goroutines have exited.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.sem == nil { // Dial failed before the loops started
		if c.conn != nil {
			c.conn.Close()
		}
		return nil
	}
	c.fail(ErrClientClosed)
	<-c.readerDone
	<-c.writerDone
	return nil
}

// fail kills the connection exactly once: records err, wakes every
// blocked submitter, closes the socket (unblocking the reader), and
// resolves every registered in-flight op with err. Ownership of each op
// transfers under c.mu — either the reader resolves it with a reply or
// fail resolves it with the error, never both.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return
	}
	c.err = err
	pend := c.pending
	c.pending = nil
	fifo := c.fifo
	c.fifo = nil
	close(c.fatal)
	c.mu.Unlock()
	c.conn.Close()
	for _, op := range pend {
		op.err = err
		close(op.done)
	}
	for _, op := range fifo {
		op.err = err
		close(op.done)
	}
}

// submit claims a window slot, registers the op for reply matching, and
// hands it to the writer goroutine. It never blocks past ctx: a full
// window (all slots in flight) is backpressure, and the caller's ctx
// bounds how long to wait for one. Failures resolve the returned op
// immediately; it always resolves eventually.
func (c *Client) submit(ctx context.Context, req Request) *clientOp {
	op := &clientOp{done: make(chan struct{})}
	f := getFrame()
	b := beginFrame(f)
	var err error
	if c.v2 {
		// Seq placeholder up front; patched once the seq is assigned.
		b, err = EncodeRequestSeq(b, 0, req)
	} else {
		b, err = EncodeRequest(b, req)
	}
	if err != nil {
		putFrame(f)
		op.err = err
		close(op.done)
		return op
	}
	f.b = finishFrame(b)
	op.frame = f
	select {
	case c.sem <- struct{}{}:
	case <-c.fatal:
		putFrame(f)
		op.frame = nil
		op.err = c.Err()
		close(op.done)
		return op
	case <-ctx.Done():
		putFrame(f)
		op.frame = nil
		op.err = fmt.Errorf("server: awaiting window slot: %w", ctx.Err())
		close(op.done)
		return op
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		<-c.sem
		putFrame(f)
		op.frame = nil
		op.err = err
		close(op.done)
		return op
	}
	op.seq = c.seq
	c.seq++
	if c.v2 {
		binary.BigEndian.PutUint64(op.frame.b[frameHeaderLen:], op.seq)
		c.pending[op.seq] = op
	} else {
		c.fifo = append(c.fifo, op)
	}
	c.mu.Unlock()
	c.sendq <- op // cannot block: sendq capacity == window, op holds a slot
	return op
}

// writeLoop is the connection's writer goroutine: it streams queued
// frames to the wire, flushing whenever the queue goes empty so a lone
// request never sits in the buffer while deep pipelines coalesce into
// few syscalls. Each frame (length prefix included, so it is a single
// Write) returns to the pool the moment its bytes reach the bufio
// layer; ops still queued when the connection dies just drop their
// frames to the GC.
func (c *Client) writeLoop() {
	defer close(c.writerDone)
	for {
		select {
		case op := <-c.sendq:
			_, err := c.bw.Write(op.frame.b)
			putFrame(op.frame)
			op.frame = nil
			if err != nil {
				c.fail(err)
				return
			}
			if len(c.sendq) == 0 {
				if err := c.bw.Flush(); err != nil {
					c.fail(err)
					return
				}
			}
		case <-c.fatal:
			return
		}
	}
}

// readLoop is the connection's reader goroutine: it decodes reply
// frames, matches each to its op — by echoed sequence number on v2,
// FIFO on v1 — resolves the op, and releases its window slot. Any
// decode or matching failure is a protocol error and kills the
// connection.
func (c *Client) readLoop() {
	defer close(c.readerDone)
	var buf []byte
	for {
		frame, err := ReadFrame(c.br, buf[:0])
		if err != nil {
			c.fail(err)
			return
		}
		buf = frame
		var op *clientOp
		var status uint8
		var body []byte
		if c.v2 {
			seq, st, bd, err := DecodeResponseSeq(frame)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			op = c.pending[seq]
			delete(c.pending, seq)
			c.mu.Unlock()
			if op == nil {
				c.fail(fmt.Errorf("server: reply for unknown sequence %d", seq))
				return
			}
			status, body = st, bd
		} else {
			st, bd, err := DecodeResponse(frame)
			if err != nil {
				c.fail(err)
				return
			}
			c.mu.Lock()
			if len(c.fifo) == 0 {
				c.mu.Unlock()
				c.fail(errors.New("server: unsolicited reply"))
				return
			}
			op = c.fifo[0]
			c.fifo = c.fifo[1:]
			c.mu.Unlock()
			status, body = st, bd
		}
		op.status = status
		if len(body) > 0 {
			// The frame buffer is reused for the next reply, so the body
			// must be copied out; small bodies (GET values, status
			// messages) land in the op's inline array instead of a fresh
			// heap slice.
			if len(body) <= len(op.bodyArr) {
				op.body = op.bodyArr[:len(body)]
				copy(op.body, body)
			} else {
				op.body = append([]byte(nil), body...)
			}
		}
		if c.v2 {
			op.err = statusError(status, body)
		} else if status == StatusErr {
			op.err = fmt.Errorf("server: %s", body)
		} else if status == StatusNotFound {
			op.err = ErrNotFound
		}
		close(op.done)
		<-c.sem
	}
}

// wait blocks until op resolves or ctx expires (WithRequestTimeout
// supplies a deadline when ctx has none). Abandoning a wait does not
// cancel the operation — it stays in flight and resolves when its
// reply arrives.
func (c *Client) wait(ctx context.Context, op *clientOp) (uint8, []byte, error) {
	select {
	case <-op.done:
		return op.status, op.body, op.err
	default:
	}
	if c.reqTimeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, c.reqTimeout)
			defer cancel()
		}
	}
	select {
	case <-op.done:
		return op.status, op.body, op.err
	case <-ctx.Done():
		return 0, nil, fmt.Errorf("server: awaiting reply: %w", ctx.Err())
	}
}

// call submits req and waits for its reply: the one-op synchronous
// round trip, pipelining transparently with concurrent callers.
func (c *Client) call(ctx context.Context, req Request) (uint8, []byte, error) {
	return c.wait(ctx, c.submit(ctx, req))
}

// future is the shared core of the typed futures: a handle to one
// in-flight operation.
type future struct {
	c  *Client
	op *clientOp
}

// Done is closed once the operation resolves; read the result with the
// typed Result method.
func (f *future) Done() <-chan struct{} { return f.op.done }

// GetFuture is an in-flight asynchronous GET.
type GetFuture struct{ future }

// Result waits for the GET and returns its value and presence.
func (f *GetFuture) Result(ctx context.Context) (uint64, bool, error) {
	_, body, err := f.c.wait(ctx, f.op)
	if errors.Is(err, ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(body) != 8 {
		return 0, false, fmt.Errorf("server: GET response body of %d bytes", len(body))
	}
	return binary.BigEndian.Uint64(body), true, nil
}

// PutFuture is an in-flight asynchronous PUT.
type PutFuture struct{ future }

// Result waits for the PUT and returns its outcome.
func (f *PutFuture) Result(ctx context.Context) error {
	_, _, err := f.c.wait(ctx, f.op)
	return err
}

// DelFuture is an in-flight asynchronous DEL.
type DelFuture struct{ future }

// Result waits for the DEL and reports whether the key was present.
func (f *DelFuture) Result(ctx context.Context) (bool, error) {
	_, _, err := f.c.wait(ctx, f.op)
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// GetAsync submits a GET without waiting for the reply. ctx bounds only
// the wait for a window slot; read the result (bounded by its own ctx)
// from the returned future. The future always resolves.
func (c *Client) GetAsync(ctx context.Context, k uint64) *GetFuture {
	return &GetFuture{future{c, c.submit(ctx, Request{Op: OpGet, Key: k})}}
}

// PutAsync submits a PUT without waiting for the reply.
func (c *Client) PutAsync(ctx context.Context, k, v uint64) *PutFuture {
	return &PutFuture{future{c, c.submit(ctx, Request{Op: OpPut, Key: k, Val: v})}}
}

// DelAsync submits a DEL without waiting for the reply.
func (c *Client) DelAsync(ctx context.Context, k uint64) *DelFuture {
	return &DelFuture{future{c, c.submit(ctx, Request{Op: OpDel, Key: k})}}
}

// Pipeline batches operations on one window: each Get/Put/Del submits
// immediately (filling the wire back-to-back), and Wait collects every
// outcome. Build a Pipeline from one goroutine; the underlying Client
// remains safe for concurrent use, so independent goroutines can run
// independent pipelines on the same connection.
type Pipeline struct {
	c   *Client
	ctx context.Context
	ops []*clientOp
}

// Pipeline starts an operation batch whose submissions and Wait are
// bounded by ctx.
func (c *Client) Pipeline(ctx context.Context) *Pipeline {
	return &Pipeline{c: c, ctx: ctx}
}

// Get queues a GET on the pipeline.
func (p *Pipeline) Get(k uint64) *GetFuture {
	f := p.c.GetAsync(p.ctx, k)
	p.ops = append(p.ops, f.op)
	return f
}

// Put queues a PUT on the pipeline.
func (p *Pipeline) Put(k, v uint64) *PutFuture {
	f := p.c.PutAsync(p.ctx, k, v)
	p.ops = append(p.ops, f.op)
	return f
}

// Del queues a DEL on the pipeline.
func (p *Pipeline) Del(k uint64) *DelFuture {
	f := p.c.DelAsync(p.ctx, k)
	p.ops = append(p.ops, f.op)
	return f
}

// Len reports how many operations the pipeline has queued.
func (p *Pipeline) Len() int { return len(p.ops) }

// Wait blocks until every queued operation resolves and returns the
// first failure, if any. Absent keys (ErrNotFound) are outcomes, not
// failures — read them from the individual futures.
func (p *Pipeline) Wait() error {
	var first error
	for _, op := range p.ops {
		_, _, err := p.c.wait(p.ctx, op)
		if err != nil && !errors.Is(err, ErrNotFound) && first == nil {
			first = err
		}
	}
	return first
}

// Get fetches the value for k.
func (c *Client) Get(k uint64) (uint64, bool, error) {
	_, body, err := c.call(context.Background(), Request{Op: OpGet, Key: k})
	if errors.Is(err, ErrNotFound) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, err
	}
	if len(body) != 8 {
		return 0, false, fmt.Errorf("server: GET response body of %d bytes", len(body))
	}
	return binary.BigEndian.Uint64(body), true, nil
}

// Put inserts or updates k.
func (c *Client) Put(k, v uint64) error {
	_, _, err := c.call(context.Background(), Request{Op: OpPut, Key: k, Val: v})
	return err
}

// Del removes k, reporting whether it was present.
func (c *Client) Del(k uint64) (bool, error) {
	_, _, err := c.call(context.Background(), Request{Op: OpDel, Key: k})
	if errors.Is(err, ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// MGet fetches many keys in one round trip; the server group-commits each
// shard's slice. It returns values and presence flags in key order.
func (c *Client) MGet(keys []uint64) ([]uint64, []bool, error) {
	status, body, err := c.call(context.Background(), Request{Op: OpMGet, Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	if status != StatusOK || len(body) != 9*len(keys) {
		return nil, nil, fmt.Errorf("server: MGET response status %d, body %d bytes for %d keys",
			status, len(body), len(keys))
	}
	vals := make([]uint64, len(keys))
	found := make([]bool, len(keys))
	for i := range keys {
		rec := body[i*9:]
		switch rec[0] {
		case BatchOK:
			found[i] = true
			vals[i] = binary.BigEndian.Uint64(rec[1:])
		case BatchNotFound:
		default:
			return nil, nil, fmt.Errorf("server: MGET op %d (key %d) failed", i, keys[i])
		}
	}
	return vals, found, nil
}

// MPut inserts or updates many pairs in one round trip; each shard's
// slice commits as one transaction. A non-nil error reports the first
// failed op (the others are unaffected — see the batch semantics in the
// package documentation).
func (c *Client) MPut(keys, vals []uint64) error {
	status, body, err := c.call(context.Background(), Request{Op: OpMPut, Keys: keys, Vals: vals})
	if err != nil {
		return err
	}
	if status != StatusOK || len(body) != len(keys) {
		return fmt.Errorf("server: MPUT response status %d, body %d bytes for %d ops",
			status, len(body), len(keys))
	}
	for i, st := range body {
		if st != BatchOK {
			return fmt.Errorf("server: MPUT op %d (key %d) failed", i, keys[i])
		}
	}
	return nil
}

// MDel removes many keys in one round trip; each shard's slice commits
// as one transaction. It reports per-key presence in key order.
func (c *Client) MDel(keys []uint64) ([]bool, error) {
	status, body, err := c.call(context.Background(), Request{Op: OpMDel, Keys: keys})
	if err != nil {
		return nil, err
	}
	if status != StatusOK || len(body) != len(keys) {
		return nil, fmt.Errorf("server: MDEL response status %d, body %d bytes for %d ops",
			status, len(body), len(keys))
	}
	present := make([]bool, len(keys))
	for i, st := range body {
		switch st {
		case BatchOK:
			present[i] = true
		case BatchNotFound:
		default:
			return nil, fmt.Errorf("server: MDEL op %d (key %d) failed", i, keys[i])
		}
	}
	return present, nil
}

// Scan fetches up to limit pairs with keys in [lo, hi] in ascending key
// order, resuming from cursor (pass 0 to start at lo, then the returned
// next while more is true). limit 0 (or beyond MaxScanPairs) asks for a
// full MaxScanPairs frame. Consistency is per server-side chunk — each
// chunk is a committed image of its shard, but a paginated live scan
// spans chunks and shards without pinning anything, so later pages see
// later commits. When every page must observe one committed state, use
// SnapScan, which pins a server-side snapshot for the scan's lifetime
// (see the package documentation). Do not feed a SnapScanner's cursor
// here: the two modes promise different consistency, which is why the
// snapshot cursor lives inside the scanner rather than in a value this
// method accepts.
func (c *Client) Scan(lo, hi uint64, limit int, cursor uint64) (pairs []Pair, next uint64, more bool, err error) {
	status, body, err := c.call(context.Background(), Request{
		Op: OpScan, Key: lo, Val: hi, Limit: uint64(limit), Cursor: cursor,
	})
	if err != nil {
		return nil, 0, false, err
	}
	if status != StatusOK || len(body) < 9 || (len(body)-9)%16 != 0 {
		return nil, 0, false, fmt.Errorf("server: SCAN response status %d, body %d bytes", status, len(body))
	}
	more = body[0] == 1
	next = binary.BigEndian.Uint64(body[1:])
	n := (len(body) - 9) / 16
	pairs = make([]Pair, n)
	for i := 0; i < n; i++ {
		rec := body[9+i*16:]
		pairs[i] = Pair{K: binary.BigEndian.Uint64(rec), V: binary.BigEndian.Uint64(rec[8:])}
	}
	return pairs, next, more, nil
}

// ScanAll paginates Scan until the range is exhausted, calling fn for
// every pair in ascending key order; fn returning false stops the scan.
func (c *Client) ScanAll(lo, hi uint64, fn func(k, v uint64) bool) error {
	cursor := uint64(0)
	for {
		pairs, next, more, err := c.Scan(lo, hi, 0, cursor)
		if err != nil {
			return err
		}
		for _, pr := range pairs {
			if !fn(pr.K, pr.V) {
				return nil
			}
		}
		if !more {
			return nil
		}
		cursor = next
	}
}

// SnapScanner pages one snapshot-consistent scan: the first Next opens
// a server-side snapshot (pinning every shard's current generation) and
// every later Next continues it, so all pages together observe exactly
// one committed state of the set no matter how many commits land while
// the scan pages. The scanner owns its snapshot id and cursor — there
// is deliberately no way to extract the cursor into a live Scan or to
// seed a scanner from a live scan's cursor, so the two consistency
// modes cannot be mixed by construction; the server enforces the same
// contract with ErrCursorMode for hand-rolled frames.
//
// The snapshot's pins release when the scan completes (the server drops
// them with the terminal page) or the connection closes; an abandoned
// scanner holds its pins until then, and at most MaxConnSnapshots
// scanners can be open per connection. A scanner whose pinned
// generation the server evicted (version-buffer caps) fails with
// ErrSnapshotTooOld — reopen and rescan, never resume mixed.
//
// Use from one goroutine; the underlying Client stays safe for
// concurrent use by others.
type SnapScanner struct {
	c      *Client
	lo, hi uint64
	snapID uint64
	cursor uint64
	done   bool
	err    error
}

// SnapScan starts a snapshot-consistent scan of [lo, hi]. The snapshot
// is not pinned until the first Next call.
func (c *Client) SnapScan(lo, hi uint64) *SnapScanner {
	return &SnapScanner{c: c, lo: lo, hi: hi}
}

// Next fetches the scan's next page of up to limit pairs (0 or beyond
// MaxScanPairs asks for a full frame), in ascending key order. It
// returns nil once the range is exhausted; a failed scanner keeps
// returning its error.
func (sc *SnapScanner) Next(limit int) ([]Pair, error) {
	if sc.err != nil {
		return nil, sc.err
	}
	if sc.done {
		return nil, nil
	}
	lo := sc.lo
	if sc.cursor > lo {
		lo = sc.cursor
	}
	status, body, err := sc.c.call(context.Background(), Request{
		Op: OpSnapScan, Key: lo, Val: sc.hi, Limit: uint64(limit), Cursor: sc.cursor, SnapID: sc.snapID,
	})
	if err != nil {
		sc.err = err
		return nil, err
	}
	if status != StatusOK || len(body) < 17 || (len(body)-17)%16 != 0 {
		sc.err = fmt.Errorf("server: SNAPSCAN response status %d, body %d bytes", status, len(body))
		return nil, sc.err
	}
	sc.snapID = binary.BigEndian.Uint64(body)
	more := body[8] == 1
	sc.cursor = binary.BigEndian.Uint64(body[9:])
	n := (len(body) - 17) / 16
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		rec := body[17+i*16:]
		pairs[i] = Pair{K: binary.BigEndian.Uint64(rec), V: binary.BigEndian.Uint64(rec[8:])}
	}
	if !more {
		sc.done = true // the server released the snapshot with this page
	}
	return pairs, nil
}

// Done reports whether the scan has exhausted its range.
func (sc *SnapScanner) Done() bool { return sc.done }

// Scrub reads the server's maintenance health and, when run is set,
// first triggers a full scrubbing pass across every shard and waits for
// it. The pass executes as bounded incremental steps interleaved with
// live traffic on each shard; the returned status carries its merged
// report (check Report.ChecksumsVerified before reading "0 bad objects"
// as "verified clean") plus the scrub health counters.
func (c *Client) Scrub(run bool) (ScrubStatus, error) {
	var st ScrubStatus
	mode := uint64(0)
	if run {
		mode = 1
	}
	_, body, err := c.call(context.Background(), Request{Op: OpScrub, Key: mode})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("server: decoding scrub status: %w", err)
	}
	return st, nil
}

// InjectReport is an INJECT reply: how many objects were corrupted, and
// the per-shard capability picture that makes a zero count
// interpretable — CapableShards == 0 means no shard backend carries the
// injection hook at all (log shards have no redundancy to heal with),
// so retrying with fresh seeds is futile; CapableShards > 0 with
// Injected == 0 means the capable shards simply held nothing live yet.
type InjectReport struct {
	Injected      uint64 // objects actually corrupted
	CapableShards uint64 // shards whose backend implements fault injection
	TotalShards   uint64 // shards in the set
}

// Inject asks the server to corrupt count pseudo-randomly chosen live
// objects across the shards (scribbles and media-error poison,
// alternating by seed) — the fault-injection hook behind the loadtest's
// corruption-healing phase. The report says how many objects were
// corrupted and how many shards could inject at all. Like CRASH, this
// is a test harness op, not a production verb.
func (c *Client) Inject(seed int64, count int) (InjectReport, error) {
	status, body, err := c.call(context.Background(), Request{Op: OpInject, Key: uint64(seed), Val: uint64(count)})
	if err != nil {
		return InjectReport{}, err
	}
	if status != StatusOK || len(body) != 24 {
		return InjectReport{}, fmt.Errorf("server: INJECT response status %d, body %d bytes", status, len(body))
	}
	return InjectReport{
		Injected:      binary.BigEndian.Uint64(body),
		CapableShards: binary.BigEndian.Uint64(body[8:]),
		TotalShards:   binary.BigEndian.Uint64(body[16:]),
	}, nil
}

// Stats fetches the server's shard statistics.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	_, body, err := c.call(context.Background(), Request{Op: OpStats})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return st, fmt.Errorf("server: decoding stats: %w", err)
	}
	return st, nil
}

// Sync asks the server to save every shard snapshot.
func (c *Client) Sync() error {
	_, _, err := c.call(context.Background(), Request{Op: OpSync})
	return err
}

// Crash asks the server to simulate a machine crash: every shard file is
// replaced with a crash image, and the server process is expected to die
// without syncing. The call returns once the images are written.
func (c *Client) Crash(seed int64) error {
	_, _, err := c.call(context.Background(), Request{Op: OpCrash, Key: uint64(seed)})
	return err
}
