package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"net"
)

// Backup streams a snapshot-consistent image of the whole keyspace from
// the server at addr, calling fn for every pair; fn returning false
// stops the stream early (the connection is simply dropped, which
// releases the server-side pins). The server pins one generation per
// shard when the request arrives, so the image is exactly the set's
// committed state at that moment — a backup taken under sustained
// writes restores to one consistent state, not a smear of mid-backup
// commits.
//
// BACKUP is a multi-frame streaming op, which the pipelined Client's
// one-reply-per-request matching cannot carry; Backup therefore speaks
// the v1 protocol on a dedicated connection it dials and closes itself.
// Server-side failures arrive as typed errors (ErrSnapshotUnsupported
// when a shard backend cannot snapshot, ErrSnapshotTooOld when the pins
// were evicted mid-stream); either way the stream ends with the error,
// never with a silently truncated image. ctx bounds the whole stream.
func Backup(ctx context.Context, addr string, fn func(k, v uint64) bool) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	bw := bufio.NewWriter(conn)
	payload, err := EncodeRequest(nil, Request{Op: OpBackup})
	if err != nil {
		return err
	}
	if err := WriteFrame(bw, payload); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	br := bufio.NewReader(conn)
	var buf []byte
	for {
		frame, err := ReadFrame(br, buf)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("server: backup stream: %w", ctx.Err())
			}
			return fmt.Errorf("server: backup stream: %w", err)
		}
		buf = frame
		if len(frame) < 1 {
			return fmt.Errorf("server: empty backup frame")
		}
		if frame[0] != StatusOK {
			return statusError(frame[0], frame[1:])
		}
		if len(frame) < 2 || (len(frame)-2)%16 != 0 {
			return fmt.Errorf("server: backup frame of %d bytes", len(frame))
		}
		for off := 2; off < len(frame); off += 16 {
			k := binary.BigEndian.Uint64(frame[off:])
			v := binary.BigEndian.Uint64(frame[off+8:])
			if !fn(k, v) {
				return nil
			}
		}
		if frame[1] == 0 {
			return nil
		}
	}
}
