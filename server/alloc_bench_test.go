package server

import (
	"context"
	"testing"

	"github.com/pangolin-go/pangolin/internal/shard"
)

// The allocation-budget benchmarks: every number these report is gated
// by make bench-alloc against bench/alloc_budgets.txt, so a hot-path
// change that starts allocating again fails CI rather than silently
// burning the margin the paper's §4 leaves for integrity work. They
// run client and server in one process, so allocs/op is the whole
// round trip: encode, frame, dispatch, shard commit, reply, decode.

// benchServerAddr boots a server over a fresh 2-shard set.
func benchServerAddr(b *testing.B) string {
	b.Helper()
	set, err := shard.Create(b.TempDir(), 2, shard.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	b.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			b.Errorf("Serve: %v", err)
		}
		set.Abandon()
	})
	return srv.Addr().String()
}

const benchKeys = 4096

// benchPreload fills the key space so GETs hit.
func benchPreload(b *testing.B, c *Client) {
	b.Helper()
	ks := make([]uint64, 0, 512)
	vs := make([]uint64, 0, 512)
	for k := uint64(0); k < benchKeys; k += 512 {
		ks, vs = ks[:0], vs[:0]
		for i := uint64(0); i < 512; i++ {
			ks = append(ks, k+i)
			vs = append(vs, (k+i)*3)
		}
		if err := c.MPut(ks, vs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocPipelinedGetPut is THE gated round-trip number: a
// depth-256 pipelined v2 connection alternating GETs and PUTs, chunks
// of one window submitted asynchronously and drained together. The
// acceptance bar for the pooled-buffer work is allocs/op here ≥ 40%
// below the pre-PR baseline recorded in bench/alloc_budgets.txt.
func BenchmarkAllocPipelinedGetPut(b *testing.B) {
	addr := benchServerAddr(b)
	c, err := Dial(context.Background(), addr, WithPipelineDepth(256))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchPreload(b, c)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		p := c.Pipeline(ctx)
		n := min(256, b.N-i)
		for j := 0; j < n; j++ {
			k := uint64(i+j) % benchKeys
			if (i+j)%2 == 0 {
				p.Get(k)
			} else {
				p.Put(k, uint64(i+j))
			}
		}
		if err := p.Wait(); err != nil {
			b.Fatal(err)
		}
		i += n
	}
}

// BenchmarkAllocV1GetPut measures the legacy in-order protocol loop
// (satellite: serveV1's per-connection encode/decode buffer reuse) on
// a lockstep connection — every op is a full synchronous round trip.
func BenchmarkAllocV1GetPut(b *testing.B) {
	addr := benchServerAddr(b)
	c, err := Dial(context.Background(), addr, WithProtocolV1())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	benchPreload(b, c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i) % benchKeys
		if i%2 == 0 {
			if _, _, err := c.Get(k); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := c.Put(k, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
