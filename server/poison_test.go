package server

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// TestPoisonedFrameTorture is the ownership-contract enforcement test
// for the frame pool (pool.go): with poisonFrames set, every frame is
// scribbled with 0xDB the moment it is released, so any code path that
// still aliases recycled frame memory — a GET body not copied out, a
// scan page decoded after its frame went back to the pool — returns
// deterministic garbage instead of failing only under rare reuse
// timing. The test storms GET/MGET/SNAPSCAN readers over a read-only
// key range with a known value model (v = k*3) while a disjoint PUT
// storm churns frames through the pool as fast as possible, and checks
// every returned value against the model. Run it with -race: the
// poison scribble also gives the race detector a write to pair with
// any stale read.
func TestPoisonedFrameTorture(t *testing.T) {
	poisonFrames.Store(true)
	defer poisonFrames.Store(false)

	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Read-only region with a checkable model: v = k*3.
	const roKeys = 256
	p := c.Pipeline(t.Context())
	for k := uint64(1); k <= roKeys; k++ {
		p.Put(k, k*3)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}

	iters := 300
	if testing.Short() {
		iters = 50
	}

	var wg sync.WaitGroup
	errc := make(chan error, 16)
	report := func(err error) {
		select {
		case errc <- err:
		default:
		}
	}

	// PUT storm on a disjoint range: its only job is to recycle frames
	// (request frames client-side, completion frames server-side) as
	// fast as possible while the readers below hold their results.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := uint64(10_000 + g*1000 + i%500)
				if err := c.Put(k, rand.Uint64()); err != nil {
					report(err)
					return
				}
			}
		}(g)
	}

	// GET storm: single-key reads against the model.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				k := uint64(rng.Intn(roKeys)) + 1
				v, ok, err := c.Get(k)
				if err != nil {
					report(err)
					return
				}
				if !ok || v != k*3 {
					t.Errorf("GET %d = %d, %v; want %d (stale frame memory?)", k, v, ok, k*3)
					return
				}
			}
		}(int64(g))
	}

	// MGET storm: batch reads, every slot checked.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		keys := make([]uint64, 16)
		for i := 0; i < iters; i++ {
			for j := range keys {
				keys[j] = uint64(rng.Intn(roKeys)) + 1
			}
			vals, oks, err := c.MGet(keys)
			if err != nil {
				report(err)
				return
			}
			for j, k := range keys {
				if !oks[j] || vals[j] != k*3 {
					t.Errorf("MGET %d = %d, %v; want %d (stale frame memory?)", k, vals[j], oks[j], k*3)
					return
				}
			}
		}
	}()

	// SNAPSCAN storm: page through the read-only range repeatedly; the
	// pages are decoded from reused read buffers, so every pair is a
	// copy-out check.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			sc := c.SnapScan(1, roKeys)
			seen := 0
			for {
				pairs, err := sc.Next(64)
				if err != nil {
					report(err)
					return
				}
				if pairs == nil {
					break
				}
				for _, pr := range pairs {
					if pr.V != pr.K*3 {
						t.Errorf("SNAPSCAN pair %d = %d; want %d (stale frame memory?)", pr.K, pr.V, pr.K*3)
						return
					}
					seen++
				}
			}
			if seen != roKeys {
				t.Errorf("SNAPSCAN saw %d pairs, want %d", seen, roKeys)
				return
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
}

// TestPoisonedFramesV1 repeats the torture over the v1 protocol, whose
// server side reuses one per-connection encode buffer (serveConn) and
// whose client side pools request frames like v2. v1 is lockstep per
// connection, so the storm uses several connections to keep frames
// cycling.
func TestPoisonedFramesV1(t *testing.T) {
	poisonFrames.Store(true)
	defer poisonFrames.Store(false)

	_, addr := startServer(t, t.TempDir(), 2)
	setup, err := Dial(t.Context(), addr, WithProtocolV1())
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()

	const roKeys = 128
	for k := uint64(1); k <= roKeys; k++ {
		if err := setup.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}

	iters := 200
	if testing.Short() {
		iters = 40
	}

	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			c, err := Dial(context.Background(), addr, WithProtocolV1())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				if i%3 == 0 {
					if err := c.Put(uint64(20_000+rng.Intn(500)), rand.Uint64()); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				k := uint64(rng.Intn(roKeys)) + 1
				v, ok, err := c.Get(k)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok || v != k*3 {
					t.Errorf("v1 GET %d = %d, %v; want %d (stale frame memory?)", k, v, ok, k*3)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
