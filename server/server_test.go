package server

import (
	"bytes"
	"net"
	"testing"

	"github.com/pangolin-go/pangolin/internal/shard"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Val: ^uint64(0)},
		{Op: OpDel, Key: 0},
		{Op: OpStats},
		{Op: OpSync},
		{Op: OpCrash, Key: uint64(7)},
	}
	for _, want := range cases {
		p, err := EncodeRequest(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip %+v → %+v", want, got)
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	for _, p := range [][]byte{
		nil,
		{99},                            // unknown op
		{OpGet},                         // missing key
		{OpPut, 0, 0, 0, 0, 0, 0, 0, 0}, // missing value
		append([]byte{OpStats}, 1),      // trailing bytes
	} {
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("DecodeRequest(%v) accepted garbage", p)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 9000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %x → %x", want, got)
		}
		scratch = got
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Fatal("ReadFrame accepted a 4 GB frame header")
	}
}

// startServer boots a server over a fresh 2-shard set and returns its
// address. Cleanup tears the network down and abandons the set.
func startServer(t *testing.T, dir string, shards int) (*Server, string) {
	t.Helper()
	set, err := shard.Create(dir, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		set.Abandon()
	})
	return srv, srv.Addr().String()
}

func TestServerBasicOps(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, ok, err := c.Get(5); err != nil || ok {
		t.Fatalf("get absent = %v, %v", ok, err)
	}
	if err := c.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(5); err != nil || !ok || v != 50 {
		t.Fatalf("get 5 = (%d,%v,%v), want (50,true,nil)", v, ok, err)
	}
	if ok, err := c.Del(5); err != nil || !ok {
		t.Fatalf("del 5 = %v, %v", ok, err)
	}
	if ok, err := c.Del(5); err != nil || ok {
		t.Fatalf("del absent = %v, %v", ok, err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 2 || st.Puts != 1 || st.Gets != 2 || st.Dels != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{99, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	status, _, err := DecodeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusErr {
		t.Fatalf("status = %d, want StatusErr", status)
	}
	// The server answers good requests on the same connection afterwards.
	req, _ := EncodeRequest(nil, Request{Op: OpPut, Key: 1, Val: 2})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	p, err = ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ = DecodeResponse(p); status != StatusOK {
		t.Fatalf("put after bad frame: status %d", status)
	}
}

func TestClientAfterClose(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 1); err == nil {
		t.Fatal("Put on closed client succeeded")
	}
}
