package server

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"github.com/pangolin-go/pangolin/internal/shard"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Val: ^uint64(0)},
		{Op: OpDel, Key: 0},
		{Op: OpStats},
		{Op: OpSync},
		{Op: OpCrash, Key: uint64(7)},
		{Op: OpMGet, Keys: []uint64{1, 2, ^uint64(0)}},
		{Op: OpMPut, Keys: []uint64{9, 8}, Vals: []uint64{90, 80}},
		{Op: OpMDel, Keys: []uint64{5}},
		{Op: OpScan, Key: 10, Val: ^uint64(0), Limit: 512, Cursor: 99},
	}
	for _, want := range cases {
		p, err := EncodeRequest(nil, want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(p)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip %+v → %+v", want, got)
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	oversized, _ := EncodeRequest(nil, Request{Op: OpMDel, Keys: make([]uint64, MaxBatchOps)})
	for _, p := range [][]byte{
		nil,
		{99},                                  // unknown op
		{OpGet},                               // missing key
		{OpPut, 0, 0, 0, 0, 0, 0, 0, 0},       // missing value
		append([]byte{OpStats}, 1),            // trailing bytes
		{OpMGet},                              // zero batch ops
		{OpMGet, 1, 2, 3},                     // ragged batch payload
		{OpMPut, 0, 0, 0, 0, 0, 0, 0, 0},      // MPUT key without value
		append(oversized, make([]byte, 8)...), // MaxBatchOps + 1
		append([]byte{OpScan}, make([]byte, 24)...), // SCAN missing its cursor field
	} {
		if _, err := DecodeRequest(p); err == nil {
			t.Errorf("DecodeRequest(%v) accepted garbage", p[:min(len(p), 12)])
		}
	}
}

func TestEncodeRequestRejectsBadBatches(t *testing.T) {
	for _, req := range []Request{
		{Op: OpMGet}, // empty
		{Op: OpMPut, Keys: []uint64{1, 2}, Vals: []uint64{1}}, // ragged
		{Op: OpMDel, Keys: make([]uint64, MaxBatchOps+1)},     // oversized
	} {
		if _, err := EncodeRequest(nil, req); err == nil {
			t.Errorf("EncodeRequest(%+v) accepted a bad batch", req.Op)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{}, {1}, bytes.Repeat([]byte{0xAB}, 9000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	var scratch []byte
	for _, want := range payloads {
		got, err := ReadFrame(&buf, scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %x → %x", want, got)
		}
		scratch = got
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadFrame(&buf, nil); err == nil {
		t.Fatal("ReadFrame accepted a 4 GB frame header")
	}
}

// startServer boots a server over a fresh 2-shard set and returns its
// address. Cleanup tears the network down and abandons the set.
func startServer(t *testing.T, dir string, shards int) (*Server, string) {
	t.Helper()
	set, err := shard.Create(dir, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
		set.Abandon()
	})
	return srv, srv.Addr().String()
}

func TestServerBasicOps(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, ok, err := c.Get(5); err != nil || ok {
		t.Fatalf("get absent = %v, %v", ok, err)
	}
	if err := c.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(5); err != nil || !ok || v != 50 {
		t.Fatalf("get 5 = (%d,%v,%v), want (50,true,nil)", v, ok, err)
	}
	if ok, err := c.Del(5); err != nil || !ok {
		t.Fatalf("del 5 = %v, %v", ok, err)
	}
	if ok, err := c.Del(5); err != nil || ok {
		t.Fatalf("del absent = %v, %v", ok, err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.NumShards != 2 || st.Puts != 1 || st.Gets+st.FastGets != 2 || st.Dels != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerBatchOps(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	vals := make([]uint64, len(keys))
	for i, k := range keys {
		vals[i] = k * 100
	}
	if err := c.MPut(keys, vals); err != nil {
		t.Fatal(err)
	}
	gotVals, found, err := c.MGet([]uint64{3, 99, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || gotVals[0] != 300 || found[1] || !found[2] || gotVals[2] != 700 {
		t.Fatalf("MGET = %v / %v", gotVals, found)
	}
	present, err := c.MDel([]uint64{2, 99, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !present[0] || present[1] || !present[2] {
		t.Fatalf("MDEL presence = %v", present)
	}
	if _, ok, _ := c.Get(2); ok {
		t.Fatal("key 2 survived MDEL")
	}
	if v, ok, _ := c.Get(1); !ok || v != 100 {
		t.Fatal("key 1 lost")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 8 || st.Gets+st.FastGets != 5 || st.Dels != 3 {
		t.Fatalf("stats after batches = %+v", st)
	}
	if st.FastGets == 0 {
		t.Fatalf("GET/MGET never took the read fast path: %+v", st)
	}
	if st.Batches == 0 || st.BatchedOps < 8 {
		t.Fatalf("no group commits recorded: %+v", st)
	}
	// A batch larger than the shard group window still works (split into
	// several group commits server-side).
	big := make([]uint64, 1000)
	bigV := make([]uint64, 1000)
	for i := range big {
		big[i] = 1000 + uint64(i)
		bigV[i] = uint64(i)
	}
	if err := c.MPut(big, bigV); err != nil {
		t.Fatal(err)
	}
	gotVals, found, err = c.MGet(big)
	if err != nil {
		t.Fatal(err)
	}
	for i := range big {
		if !found[i] || gotVals[i] != bigV[i] {
			t.Fatalf("big batch key %d = (%d,%v)", big[i], gotVals[i], found[i])
		}
	}
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteFrame(conn, []byte{99, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	status, _, err := DecodeResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusErr {
		t.Fatalf("status = %d, want StatusErr", status)
	}
	// The server answers good requests on the same connection afterwards.
	req, _ := EncodeRequest(nil, Request{Op: OpPut, Key: 1, Val: 2})
	if err := WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	p, err = ReadFrame(conn, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ = DecodeResponse(p); status != StatusOK {
		t.Fatalf("put after bad frame: status %d", status)
	}
}

func TestClientAfterClose(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(1, 1); err == nil {
		t.Fatal("Put on closed client succeeded")
	}
}
