package server

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

func TestV2RequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Val: ^uint64(0)},
		{Op: OpDel, Key: 0},
		{Op: OpStats},
		{Op: OpScrub, Key: 1},
		{Op: OpMGet, Keys: []uint64{1, 2, ^uint64(0)}},
		{Op: OpMPut, Keys: []uint64{9, 8}, Vals: []uint64{90, 80}},
		{Op: OpScan, Key: 10, Val: ^uint64(0), Limit: 512, Cursor: 99},
		{Op: OpHello, Key: HelloMagic, Val: ProtocolV2, Limit: 128},
	}
	for i, want := range cases {
		seq := uint64(i) * 0x0101010101010101
		p, err := EncodeRequestSeq(nil, seq, want)
		if err != nil {
			t.Fatal(err)
		}
		gotSeq, got, err := DecodeRequestSeq(p)
		if err != nil {
			t.Fatalf("%+v: %v", want, err)
		}
		if gotSeq != seq || !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip seq %d %+v → seq %d %+v", seq, want, gotSeq, got)
		}
	}
}

func TestV2ResponseRoundTrip(t *testing.T) {
	for _, body := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xCD}, 4096)} {
		p := EncodeResponseSeq(nil, 77, StatusShutdown, body)
		seq, status, got, err := DecodeResponseSeq(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != 77 || status != StatusShutdown || !bytes.Equal(got, body) {
			t.Fatalf("response round trip: seq %d status %d body %x", seq, status, got)
		}
	}
}

func TestDecodeV2RejectsShortPayloads(t *testing.T) {
	for _, p := range [][]byte{nil, {}, {1, 2, 3, 4, 5, 6, 7}} {
		if _, _, err := DecodeRequestSeq(p); err == nil {
			t.Errorf("DecodeRequestSeq(%x) accepted a payload with no seq", p)
		}
	}
	// A seq with no request behind it is an error too — but a decodable
	// one (the seq can be echoed with an ERR status).
	if _, _, err := DecodeRequestSeq([]byte{0, 0, 0, 0, 0, 0, 0, 9}); err == nil {
		t.Error("DecodeRequestSeq accepted seq-only payload")
	}
	for _, p := range [][]byte{nil, {}, {1, 2, 3, 4, 5, 6, 7, 8}} {
		if _, _, _, err := DecodeResponseSeq(p); err == nil {
			t.Errorf("DecodeResponseSeq(%x) accepted a short payload", p)
		}
	}
}

func TestDecodeHello(t *testing.T) {
	good, _ := EncodeRequest(nil, Request{Op: OpHello, Key: HelloMagic, Val: ProtocolV2, Limit: 64})
	if v, w, ok := DecodeHello(good); !ok || v != ProtocolV2 || w != 64 {
		t.Fatalf("DecodeHello(good) = (%d,%d,%v)", v, w, ok)
	}
	noMagic, _ := EncodeRequest(nil, Request{Op: OpHello, Key: 12345, Val: ProtocolV2, Limit: 64})
	get, _ := EncodeRequest(nil, Request{Op: OpGet, Key: HelloMagic})
	for _, p := range [][]byte{noMagic, get, nil, {OpHello}} {
		if _, _, ok := DecodeHello(p); ok {
			t.Errorf("DecodeHello(%x) accepted a non-HELLO", p)
		}
	}
}

func TestGrantWindow(t *testing.T) {
	for req, want := range map[uint64]int{
		0:             DefaultWindow,
		1:             1,
		128:           128,
		MaxWindow:     MaxWindow,
		MaxWindow + 1: MaxWindow,
		1 << 40:       MaxWindow,
	} {
		if got := GrantWindow(req); got != want {
			t.Errorf("GrantWindow(%d) = %d, want %d", req, got, want)
		}
	}
}

// FuzzDecodeV2 throws arbitrary payloads at the v2 decoders: they must
// never panic, and anything they accept must re-encode to the identical
// bytes (the wire forms are canonical).
func FuzzDecodeV2(f *testing.F) {
	req, _ := EncodeRequestSeq(nil, 7, Request{Op: OpPut, Key: 1, Val: 2})
	f.Add(req)
	batch, _ := EncodeRequestSeq(nil, 9, Request{Op: OpMPut, Keys: []uint64{1, 2}, Vals: []uint64{3, 4}})
	f.Add(batch)
	hello, _ := EncodeRequest(nil, Request{Op: OpHello, Key: HelloMagic, Val: ProtocolV2, Limit: 8})
	f.Add(hello)
	f.Add(EncodeResponseSeq(nil, 3, StatusCorrupt, []byte("bad object")))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, p []byte) {
		if seq, req, err := DecodeRequestSeq(p); err == nil {
			enc, err := EncodeRequestSeq(nil, seq, req)
			if err != nil {
				t.Fatalf("re-encoding decoded request %+v: %v", req, err)
			}
			if !bytes.Equal(enc, p) {
				t.Fatalf("request not canonical: %x → %+v → %x", p, req, enc)
			}
		}
		if seq, status, body, err := DecodeResponseSeq(p); err == nil {
			if enc := EncodeResponseSeq(nil, seq, status, body); !bytes.Equal(enc, p) {
				t.Fatalf("response not canonical: %x → %x", p, enc)
			}
		}
		DecodeHello(p)
	})
}

func TestHelloNegotiation(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)

	// Default dial negotiates v2 with the server's default window.
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if c.ProtocolVersion() != ProtocolV2 || c.Window() != DefaultWindow {
		t.Fatalf("default dial: version %d window %d", c.ProtocolVersion(), c.Window())
	}
	c.Close()

	// A requested depth is granted as-is within bounds, clamped above.
	c, err = Dial(t.Context(), addr, WithPipelineDepth(8))
	if err != nil {
		t.Fatal(err)
	}
	if c.Window() != 8 {
		t.Fatalf("depth 8 granted window %d", c.Window())
	}
	c.Close()
	c, err = Dial(t.Context(), addr, WithPipelineDepth(MaxWindow+500))
	if err != nil {
		t.Fatal(err)
	}
	if c.Window() != MaxWindow {
		t.Fatalf("oversized depth granted window %d, want clamp to %d", c.Window(), MaxWindow)
	}
	c.Close()

	// An unsupported version is rejected with an ERR reply, not served.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad, _ := EncodeRequest(nil, Request{Op: OpHello, Key: HelloMagic, Val: 3})
	if err := WriteFrame(conn, bad); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFrame(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := DecodeResponse(p); status != StatusErr {
		t.Fatalf("HELLO v3 answered with status %d, want StatusErr", status)
	}
}

// TestOpcode13WithoutMagicStaysV1: a first frame carrying the HELLO
// opcode but not the magic must not hijack the connection into v2 — it
// is answered as a (failed) v1 request and the connection keeps
// speaking v1.
func TestOpcode13WithoutMagicStaysV1(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	notHello, _ := EncodeRequest(nil, Request{Op: OpHello, Key: 999, Val: ProtocolV2})
	if err := WriteFrame(conn, notHello); err != nil {
		t.Fatal(err)
	}
	p, err := ReadFrame(br, nil)
	if err != nil {
		t.Fatal(err)
	}
	if status, _, _ := DecodeResponse(p); status != StatusErr {
		t.Fatalf("magicless opcode 13 answered with status %d, want StatusErr", status)
	}
	// Still v1: a plain request gets a plain in-order reply.
	put, _ := EncodeRequest(nil, Request{Op: OpPut, Key: 6, Val: 60})
	if err := WriteFrame(conn, put); err != nil {
		t.Fatal(err)
	}
	if p, err = ReadFrame(br, nil); err != nil {
		t.Fatal(err)
	}
	if status, _, _ := DecodeResponse(p); status != StatusOK {
		t.Fatalf("v1 PUT after magicless 13: status %d", status)
	}
}

// TestV1ClientAgainstV2Server: the compatibility path end to end — a
// WithProtocolV1 client (seqless frames, FIFO reply matching) drives a
// current server through the full verb surface, including concurrent
// pipelined use of one connection.
func TestV1ClientAgainstV2Server(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr, WithProtocolV1(), WithPipelineDepth(32))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ProtocolVersion() != 1 {
		t.Fatalf("ProtocolVersion = %d, want 1", c.ProtocolVersion())
	}
	if err := c.Put(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get(5); err != nil || !ok || v != 50 {
		t.Fatalf("get 5 = (%d,%v,%v)", v, ok, err)
	}
	if _, ok, err := c.Get(99); err != nil || ok {
		t.Fatalf("get absent = (%v,%v)", ok, err)
	}
	if err := c.MPut([]uint64{10, 11, 12}, []uint64{100, 110, 120}); err != nil {
		t.Fatal(err)
	}
	if vals, found, err := c.MGet([]uint64{10, 11, 99}); err != nil || !found[0] || vals[1] != 110 || found[2] {
		t.Fatalf("MGET = %v/%v/%v", vals, found, err)
	}
	if pairs, _, _, err := c.Scan(0, ^uint64(0), 100, 0); err != nil || len(pairs) != 4 {
		t.Fatalf("scan = %d pairs, %v", len(pairs), err)
	}
	if present, err := c.MDel([]uint64{12, 99}); err != nil || !present[0] || present[1] {
		t.Fatalf("MDEL = %v/%v", present, err)
	}
	if ok, err := c.Del(5); err != nil || !ok {
		t.Fatalf("del = %v/%v", ok, err)
	}
	if _, err := c.Scrub(false); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}

	// Concurrent use of the one v1 connection: replies arrive in request
	// order, and FIFO matching must hand each worker its own answer.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for id := 0; id < 8; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := uint64(id+1) << 32
			for i := uint64(0); i < 50; i++ {
				if err := c.Put(base+i, base^i); err != nil {
					errs <- err
					return
				}
				v, ok, err := c.Get(base + i)
				if err != nil || !ok || v != base^i {
					//pgllint:ignore errwrap test diagnostic renders the whole (v,ok,err) tuple; err may be nil here and nothing unwraps it
					errs <- fmt.Errorf("worker %d: get %d = (%d,%v,%v)", id, base+i, v, ok, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestAsyncFuturesAndPipeline(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 2)
	c, err := Dial(t.Context(), addr, WithPipelineDepth(64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := t.Context()

	// Async futures resolve independently and out of submission order.
	pf := c.PutAsync(ctx, 1, 10)
	gf := c.GetAsync(ctx, 2) // absent
	df := c.DelAsync(ctx, 3) // absent
	if err := pf.Result(ctx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := gf.Result(ctx); err != nil || ok {
		t.Fatalf("async get absent = (%v,%v)", ok, err)
	}
	if present, err := df.Result(ctx); err != nil || present {
		t.Fatalf("async del absent = (%v,%v)", present, err)
	}
	gf = c.GetAsync(ctx, 1)
	if v, ok, err := gf.Result(ctx); err != nil || !ok || v != 10 {
		t.Fatalf("async get 1 = (%d,%v,%v)", v, ok, err)
	}

	// A pipeline fills the window back-to-back and Wait collects all.
	const n = 300 // > window: submissions backpressure through the window
	p := c.Pipeline(ctx)
	for i := uint64(0); i < n; i++ {
		p.Put(1000+i, i*3)
	}
	if p.Len() != n {
		t.Fatalf("pipeline len %d", p.Len())
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	rp := c.Pipeline(ctx)
	gets := make([]*GetFuture, n)
	for i := uint64(0); i < n; i++ {
		gets[i] = rp.Get(1000 + i)
	}
	if err := rp.Wait(); err != nil {
		t.Fatal(err)
	}
	for i, f := range gets {
		v, ok, err := f.Result(ctx)
		if err != nil || !ok || v != uint64(i)*3 {
			t.Fatalf("pipelined get %d = (%d,%v,%v), want %d", i, v, ok, err, i*3)
		}
	}
	if c.Err() != nil {
		t.Fatalf("healthy client reports Err %v", c.Err())
	}
}

// startFakeV2Server accepts one connection, performs the HELLO
// handshake, and answers every request with respond — a harness for
// client-side behaviors a real server can't produce on demand.
func startFakeV2Server(t *testing.T, respond func(seq uint64, req Request) (uint64, uint8, []byte)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		bw := bufio.NewWriter(conn)
		first, err := ReadFrame(br, nil)
		if err != nil {
			return
		}
		_, window, ok := DecodeHello(first)
		if !ok {
			return
		}
		ack := appendU64(appendU64(nil, ProtocolV2), uint64(GrantWindow(window)))
		if WriteFrame(bw, EncodeResponse(nil, StatusOK, ack)) != nil || bw.Flush() != nil {
			return
		}
		for {
			p, err := ReadFrame(br, nil)
			if err != nil {
				return
			}
			seq, req, err := DecodeRequestSeq(p)
			if err != nil {
				return
			}
			rseq, status, body := respond(seq, req)
			if WriteFrame(bw, EncodeResponseSeq(nil, rseq, status, body)) != nil || bw.Flush() != nil {
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestTypedErrorsAcrossWire: v2 status bytes rebuild the in-process
// error taxonomy on the client — errors.Is for shutdown, the pangolin
// corruption/poison predicates for media faults.
func TestTypedErrorsAcrossWire(t *testing.T) {
	statuses := make(chan uint8, 3)
	statuses <- StatusShutdown
	statuses <- StatusCorrupt
	statuses <- StatusPoison
	addr := startFakeV2Server(t, func(seq uint64, req Request) (uint64, uint8, []byte) {
		return seq, <-statuses, []byte("injected failure")
	})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("StatusShutdown → %v, want ErrShuttingDown", err)
	}
	if err := c.Put(2, 2); !pangolin.IsCorruption(err) {
		t.Fatalf("StatusCorrupt → %v, want IsCorruption", err)
	}
	if err := c.Put(3, 3); !pangolin.IsPoison(err) {
		t.Fatalf("StatusPoison → %v, want IsPoison", err)
	}
	if c.Err() != nil {
		t.Fatalf("typed per-op failures are not fatal, but Err = %v", c.Err())
	}
}

// TestOutOfOrderReplies drives the raw wire from the server side: read
// both GETs, reply to the second before the first, and check each
// future resolves to its own value — sequence matching proven directly.
func TestOutOfOrderReplies(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverErr := make(chan error, 1)
	go func() {
		serverErr <- func() error {
			conn, err := ln.Accept()
			if err != nil {
				return err
			}
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			first, err := ReadFrame(br, nil)
			if err != nil {
				return err
			}
			if _, _, ok := DecodeHello(first); !ok {
				return fmt.Errorf("first frame is not a HELLO")
			}
			ack := appendU64(appendU64(nil, ProtocolV2), uint64(DefaultWindow))
			if err := WriteFrame(bw, EncodeResponse(nil, StatusOK, ack)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
			var reqs []struct {
				seq uint64
				req Request
			}
			for len(reqs) < 2 {
				p, err := ReadFrame(br, nil)
				if err != nil {
					return err
				}
				seq, req, err := DecodeRequestSeq(p)
				if err != nil {
					return err
				}
				reqs = append(reqs, struct {
					seq uint64
					req Request
				}{seq, req})
			}
			// Reply in reverse order, each with its own key×10.
			for i := len(reqs) - 1; i >= 0; i-- {
				body := appendU64(nil, reqs[i].req.Key*10)
				if err := WriteFrame(bw, EncodeResponseSeq(nil, reqs[i].seq, StatusOK, body)); err != nil {
					return err
				}
			}
			return bw.Flush()
		}()
	}()

	c, err := Dial(t.Context(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := t.Context()
	f1 := c.GetAsync(ctx, 7)
	f2 := c.GetAsync(ctx, 9)
	v2, ok2, err2 := f2.Result(ctx)
	v1, ok1, err1 := f1.Result(ctx)
	if err1 != nil || err2 != nil || !ok1 || !ok2 {
		t.Fatalf("results: (%d,%v,%v) (%d,%v,%v)", v1, ok1, err1, v2, ok2, err2)
	}
	if v1 != 70 || v2 != 90 {
		t.Fatalf("out-of-order replies mismatched: got %d and %d, want 70 and 90", v1, v2)
	}
	if err := <-serverErr; err != nil {
		t.Fatal(err)
	}
}

// TestUnknownSeqIsFatal: a reply whose sequence number matches no
// in-flight op is a protocol violation; the client must die with a
// diagnosable Err rather than mis-deliver.
func TestUnknownSeqIsFatal(t *testing.T) {
	addr := startFakeV2Server(t, func(seq uint64, req Request) (uint64, uint8, []byte) {
		return seq + 12345, StatusOK, nil
	})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); err == nil {
		t.Fatal("mismatched seq reply answered a Put")
	}
	if c.Err() == nil {
		t.Fatal("client survived an unknown-seq reply")
	}
}

// TestShutdownErrorIsTyped: ops submitted while the shard set is
// shutting down resolve with ErrShuttingDown across the wire — typed,
// never silently dropped.
func TestShutdownErrorIsTyped(t *testing.T) {
	dir := t.TempDir()
	set, err := shard.Create(dir, 2, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	c, err := Dial(t.Context(), srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Put(1, 1); err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}
	err = c.Put(2, 2)
	if !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("put during shutdown = %v, want ErrShuttingDown", err)
	}
}

// TestPipelinedTorture is the concurrency gauntlet for the v2 path: many
// goroutines pipeline GET/PUT/DEL/SCAN at depth 128 on one shared
// connection while a second connection runs full scrub passes, then the
// run takes a mid-stream CRASH and teardown. Every operation must
// resolve — to its own reply (checked against a per-goroutine model:
// one cross-delivered sequence number shows up as a wrong value) or to
// an error once the teardown starts — and the crash images must
// recover scrub-clean.
func TestPipelinedTorture(t *testing.T) {
	dir := t.TempDir()
	const shards = 4
	const workers = 12
	target := uint64(6000)
	if testing.Short() {
		target = 1500
	}
	set, err := shard.Create(dir, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	c, err := Dial(t.Context(), addr, WithPipelineDepth(128))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Background scrubber on its own connection: full passes interleave
	// with the pipelined load.
	sc, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	var maintWG sync.WaitGroup
	stop := make(chan struct{})
	maintWG.Add(1)
	go func() {
		defer maintWG.Done()
		defer sc.Close()
		for {
			select {
			case <-stop:
				return
			case <-time.After(25 * time.Millisecond):
			}
			if _, err := sc.Scrub(true); err != nil {
				return // teardown killed the connection
			}
		}
	}()

	var acked atomic.Uint64
	var tearingDown atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			base := uint64(id+1) << 32
			rng := rand.New(rand.NewSource(int64(id)))
			model := map[uint64]uint64{}
			report := func(err error) {
				// Errors are legal only once the teardown begins; before
				// that, every op must succeed.
				if !tearingDown.Load() {
					errs <- fmt.Errorf("worker %d: %w", id, err)
				}
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := base + uint64(rng.Intn(192))
				switch rng.Intn(8) {
				case 0, 1, 2: // put
					v := rng.Uint64()
					if err := c.Put(k, v); err != nil {
						report(err)
						return
					}
					model[k] = v
				case 3, 4, 5: // get, checked against the model
					v, ok, err := c.Get(k)
					if err != nil {
						report(err)
						return
					}
					wantV, want := model[k]
					if ok != want || (ok && v != wantV) {
						errs <- fmt.Errorf("worker %d: get %d = (%d,%v), want (%d,%v) — reply misdelivered?",
							id, k, v, ok, wantV, want)
						return
					}
				case 6: // del
					ok, err := c.Del(k)
					if err != nil {
						report(err)
						return
					}
					if _, want := model[k]; ok != want {
						errs <- fmt.Errorf("worker %d: del %d = %v, want %v", id, k, ok, want)
						return
					}
					delete(model, k)
				case 7: // scan this worker's own range: ordered, bounded
					pairs, _, _, err := c.Scan(base, base+191, 64, 0)
					if err != nil {
						report(err)
						return
					}
					for i, pr := range pairs {
						if pr.K < base || pr.K > base+191 || (i > 0 && pr.K <= pairs[i-1].K) {
							errs <- fmt.Errorf("worker %d: scan violation at %d: %+v", id, i, pr)
							return
						}
						if want, ok := model[pr.K]; ok && pr.V != want {
							errs <- fmt.Errorf("worker %d: scan key %d = %d, want %d", id, pr.K, pr.V, want)
							return
						}
					}
				}
				acked.Add(1)
			}
		}(id)
	}

	for deadline := time.Now().Add(120 * time.Second); acked.Load() < target; {
		if time.Now().After(deadline) {
			t.Fatalf("pipelined workers stuck at %d/%d acked ops", acked.Load(), target)
		}
		time.Sleep(time.Millisecond)
	}

	// Mid-stream crash + teardown: in-flight ops must all resolve (the
	// sync calls return — a hang here is the failure).
	tearingDown.Store(true)
	cc, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Crash(42); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Crashed():
	case <-time.After(10 * time.Second):
		t.Fatal("Crashed() not signalled")
	}
	cc.Close()
	srv.Shutdown() // kills every connection with ops still in flight
	close(stop)
	wg.Wait()
	maintWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	set.Abandon() // die without syncing: crash images are the truth

	set2, err := shard.Open(dir, shard.Options{})
	if err != nil {
		t.Fatalf("recovery after pipelined crash: %v", err)
	}
	defer set2.Abandon()
	rep, err := set2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub after pipelined crash: %d unrecoverable (%+v)", rep.Unrecovered, rep)
	}
}

// TestPipelineDeepensGroupCommits is the wire-level proof of the
// tentpole's perf mechanism: the same op count driven at depth 64
// produces strictly deeper group commits than lockstep depth 1.
func TestPipelineDeepensGroupCommits(t *testing.T) {
	run := func(depth int) float64 {
		_, addr := startServer(t, t.TempDir(), 2)
		c, err := Dial(t.Context(), addr, WithPipelineDepth(depth))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var wg sync.WaitGroup
		perWorker := 200
		for w := 0; w < depth; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					if err := c.Put(uint64(w*perWorker+i), uint64(i)); err != nil {
						t.Errorf("worker %d: %v", w, err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		st, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Batches == 0 {
			return 1 // no group commits at all: depth achieved is 1
		}
		return float64(st.BatchedOps) / float64(st.Batches)
	}
	shallow := run(1)
	deep := run(64)
	if deep <= shallow {
		t.Fatalf("group depth at pipeline 64 = %.2f, not deeper than %.2f at pipeline 1", deep, shallow)
	}
}
