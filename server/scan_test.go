package server

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestServerScan: the SCAN op end-to-end over 4 shards — ordering,
// bounds, cursor pagination, limit clamping, and the stats counters.
func TestServerScan(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 4)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := c.Put(k, k*7); err != nil {
			t.Fatal(err)
		}
	}

	// Full range in one frame.
	pairs, _, more, err := c.Scan(0, ^uint64(0), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != n || more {
		t.Fatalf("full scan = %d pairs, more=%v, want %d", len(pairs), more, n)
	}
	for i, pr := range pairs {
		if pr.K != uint64(i) || pr.V != uint64(i)*7 {
			t.Fatalf("pair %d = (%d,%d), want (%d,%d)", i, pr.K, pr.V, i, uint64(i)*7)
		}
	}

	// Bounded subrange, inclusive at both ends.
	pairs, _, more, err = c.Scan(10, 20, 0, 0)
	if err != nil || len(pairs) != 11 || more {
		t.Fatalf("scan [10,20] = %d pairs, more=%v, err=%v", len(pairs), more, err)
	}
	if pairs[0].K != 10 || pairs[10].K != 20 {
		t.Fatalf("scan [10,20] spans [%d,%d]", pairs[0].K, pairs[10].K)
	}

	// Pagination with a small limit: pages concatenate to the full range
	// with no gaps or repeats.
	var all []Pair
	cursor := uint64(0)
	page := 0
	for {
		pairs, next, more, err := c.Scan(0, ^uint64(0), 37, cursor)
		if err != nil {
			t.Fatal(err)
		}
		if len(pairs) > 37 {
			t.Fatalf("page %d has %d pairs, limit 37", page, len(pairs))
		}
		all = append(all, pairs...)
		if !more {
			break
		}
		cursor = next
		page++
	}
	if len(all) != n {
		t.Fatalf("paginated scan yielded %d pairs, want %d", len(all), n)
	}
	for i, pr := range all {
		if pr.K != uint64(i) {
			t.Fatalf("paginated pair %d has key %d", i, pr.K)
		}
	}

	// ScanAll convenience matches, and early-stops.
	count := 0
	if err := c.ScanAll(0, ^uint64(0), func(k, v uint64) bool { count++; return count < 50 }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("ScanAll early stop visited %d", count)
	}

	// Scan counters flow through STATS.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.FastScans == 0 && st.Scans == 0 {
		t.Fatal("STATS shows no scan chunks after scanning")
	}
	if st.FastScanPairs+st.ScanPairs == 0 {
		t.Fatal("STATS shows no scanned pairs")
	}
}

// TestServerScanUnderWrites: scans stay ordered, in-bounds, and
// duplicate-free while concurrent clients commit writes — the e2e shape
// of the acceptance criterion, in-process.
func TestServerScanUnderWrites(t *testing.T) {
	_, addr := startServer(t, t.TempDir(), 4)
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const keys = 512
	for k := uint64(0); k < keys; k++ {
		if err := c.Put(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := Dial(t.Context(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			for i := uint64(0); !stop.Load(); i++ {
				if err := wc.Put((i*3+uint64(w))%keys, i); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 30; round++ {
		var last uint64
		first := true
		cursor := uint64(0)
		total := 0
		for {
			pairs, next, more, err := c.Scan(0, keys-1, 100, cursor)
			if err != nil {
				t.Fatal(err)
			}
			for _, pr := range pairs {
				if pr.K > keys-1 {
					t.Fatalf("out-of-bounds key %d", pr.K)
				}
				if !first && pr.K <= last {
					t.Fatalf("order regressed: %d after %d", pr.K, last)
				}
				last, first = pr.K, false
				total++
			}
			if !more {
				break
			}
			cursor = next
		}
		// Keys are only ever overwritten, never deleted, so every scan
		// must see all of them regardless of the concurrent commits.
		if total != keys {
			t.Fatalf("round %d: scan saw %d keys, want %d", round, total, keys)
		}
	}
	stop.Store(true)
	wg.Wait()
}
