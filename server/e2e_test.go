package server

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// TestEndToEndCrashUnderBatchLoad crashes the server over TCP while
// batch clients are mid-MPUT: every batch acknowledged before the crash
// snapshot must survive recovery whole (each shard slice is one
// transaction), and every shard file must pass the pglpool-check pass.
func TestEndToEndCrashUnderBatchLoad(t *testing.T) {
	dir := t.TempDir()
	const clients = 8
	const shards = 4
	const batch = 16

	set, err := shard.Create(dir, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	var committed sync.Map
	var acked atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(t.Context(), addr)
			if err != nil {
				t.Errorf("client %d: %v", id, err)
				return
			}
			defer c.Close()
			keys := make([]uint64, batch)
			vals := make([]uint64, batch)
			for k := uint64(id) << 32; ; k += batch {
				select {
				case <-stop:
					return
				default:
				}
				for i := range keys {
					keys[i] = k + uint64(i)
					vals[i] = (k + uint64(i)) ^ 0xF00D
				}
				if err := c.MPut(keys, vals); err != nil {
					return // the crash tears connections down mid-flight
				}
				for i := range keys {
					committed.Store(keys[i], vals[i])
				}
				acked.Add(batch)
			}
		}(id)
	}
	for deadline := time.Now().Add(30 * time.Second); acked.Load() < 2000; {
		if time.Now().After(deadline) {
			t.Fatal("batch clients never reached 2000 acked ops")
		}
		time.Sleep(time.Millisecond)
	}
	// Everything acknowledged by now is committed on its shards and must
	// survive the crash images; batches still in flight may or may not.
	frozen := map[uint64]uint64{}
	committed.Range(func(k, v any) bool {
		frozen[k.(uint64)] = v.(uint64)
		return true
	})
	cc, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Crash(77); err != nil {
		t.Fatal(err)
	}
	select {
	case <-srv.Crashed():
	case <-time.After(10 * time.Second):
		t.Fatal("Crashed() not signalled")
	}
	cc.Close()
	close(stop)
	srv.Shutdown()
	wg.Wait()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	set.Abandon() // die without syncing

	set2, err := shard.Open(dir, shard.Options{})
	if err != nil {
		t.Fatalf("recovery open after crash-under-batch-load: %v", err)
	}
	defer set2.Abandon()
	rep, err := set2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub: %d unrecoverable (%+v)", rep.Unrecovered, rep)
	}
	for k, want := range frozen {
		v, ok, err := set2.Get(k)
		if err != nil {
			t.Fatalf("key %d: %v", k, err)
		}
		if !ok || v != want {
			t.Fatalf("acked batch key %d = (%d,%v), want (%d,true): committed batch lost", k, v, ok, want)
		}
	}
	// Every shard file passes the pglpool-check pass.
	for i := 0; i < shards; i++ {
		pool, err := pangolin.LoadFile(pangolin.ShardFile(dir, i), pangolin.DefaultConfig())
		if err != nil {
			t.Fatalf("pglpool-check shard %d: open: %v", i, err)
		}
		rep, err := pool.Scrub()
		if err != nil {
			t.Fatalf("pglpool-check shard %d: scrub: %v", i, err)
		}
		if rep.Unrecovered != 0 {
			t.Fatalf("pglpool-check shard %d: %d unrecoverable (%+v)", i, rep.Unrecovered, rep)
		}
		pool.Close()
	}
}

// TestEndToEndConcurrentClientsThenCrash is the acceptance gauntlet: 32
// concurrent TCP clients drive a 4-shard server with a mixed workload,
// each checking against its own model over a private key range; then the
// server takes a simulated machine crash, every shard pool is reopened
// from its crash image, a fresh server is booted on the recovered set, and
// the clients verify their full models through it. Finally every shard
// file passes the same verify-and-repair pass `pglpool check` runs.
func TestEndToEndConcurrentClientsThenCrash(t *testing.T) {
	dir := t.TempDir()
	const clients = 32
	const shards = 4
	opsPerClient := 400
	if testing.Short() {
		opsPerClient = 120
	}

	set, err := shard.Create(dir, shards, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve() }()
	addr := srv.Addr().String()

	// Phase 1: concurrent mixed load, one model per client over a
	// disjoint key range.
	models := make([]map[uint64]uint64, clients)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(t.Context(), addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			model := map[uint64]uint64{}
			models[id] = model
			base := uint64(id) << 32
			rng := rand.New(rand.NewSource(int64(id)))
			for i := 0; i < opsPerClient; i++ {
				k := base + uint64(rng.Intn(256))
				switch rng.Intn(4) {
				case 0, 1: // 50% put
					v := rng.Uint64()
					if err := c.Put(k, v); err != nil {
						errs <- fmt.Errorf("client %d put: %w", id, err)
						return
					}
					model[k] = v
				case 2: // 25% get
					v, ok, err := c.Get(k)
					if err != nil {
						errs <- fmt.Errorf("client %d get: %w", id, err)
						return
					}
					wantV, want := model[k]
					if ok != want || (ok && v != wantV) {
						errs <- fmt.Errorf("client %d: key %d = (%d,%v), want (%d,%v)", id, k, v, ok, wantV, want)
						return
					}
				case 3: // 25% del
					ok, err := c.Del(k)
					if err != nil {
						errs <- fmt.Errorf("client %d del: %w", id, err)
						return
					}
					if _, want := model[k]; ok != want {
						errs <- fmt.Errorf("client %d: del %d = %v, want %v", id, k, ok, want)
						return
					}
					delete(model, k)
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The server must report a healthy spread: every shard saw traffic
	// and no shard errored.
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 0 {
		t.Fatalf("server stats report %d errors: %+v", st.Errors, st)
	}
	for _, sh := range st.Shards {
		if sh.Puts == 0 {
			t.Fatalf("shard %d saw no puts — partitioning broken? %+v", sh.Index, st)
		}
	}

	// Phase 2: simulated machine crash. All clients are quiescent, so
	// everything in the models is committed and must survive.
	if err := c.Crash(2019); err != nil {
		t.Fatal(err)
	}
	// The server signals Crashed() after flushing the response, so the
	// close can trail c.Crash returning by a scheduling beat.
	select {
	case <-srv.Crashed():
	case <-time.After(10 * time.Second):
		t.Fatal("Crashed() not signalled after OpCrash")
	}
	c.Close()
	srv.Shutdown()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
	set.Abandon() // die without syncing: the crash images are the truth

	// Phase 3: recover every shard and re-verify through a fresh server.
	set2, err := shard.Open(dir, shard.Options{})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	if set2.Len() != shards {
		t.Fatalf("recovered %d shards, want %d", set2.Len(), shards)
	}
	rep, err := set2.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 {
		t.Fatalf("scrub after crash recovery: %d unrecoverable (%+v)", rep.Unrecovered, rep)
	}
	srv2 := New(set2)
	if err := srv2.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	serve2Done := make(chan error, 1)
	go func() { serve2Done <- srv2.Serve() }()
	addr2 := srv2.Addr().String()

	errs2 := make(chan error, clients)
	for id := 0; id < clients; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := Dial(t.Context(), addr2)
			if err != nil {
				errs2 <- err
				return
			}
			defer c.Close()
			for k, want := range models[id] {
				v, ok, err := c.Get(k)
				if err != nil {
					errs2 <- fmt.Errorf("client %d get %d after crash: %w", id, k, err)
					return
				}
				if !ok || v != want {
					errs2 <- fmt.Errorf("client %d: key %d = (%d,%v) after crash, want (%d,true): committed data lost", id, k, v, ok, want)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	close(errs2)
	for err := range errs2 {
		t.Fatal(err)
	}
	srv2.Shutdown()
	if err := <-serve2Done; err != nil {
		t.Fatal(err)
	}
	if err := set2.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 4: every shard file passes the pglpool-check pass — open with
	// recovery, scrub, nothing unrecoverable.
	for i := 0; i < shards; i++ {
		pool, err := pangolin.LoadFile(pangolin.ShardFile(dir, i), pangolin.DefaultConfig())
		if err != nil {
			t.Fatalf("pglpool-check shard %d: open: %v", i, err)
		}
		rep, err := pool.Scrub()
		if err != nil {
			t.Fatalf("pglpool-check shard %d: scrub: %v", i, err)
		}
		if rep.Unrecovered != 0 {
			t.Fatalf("pglpool-check shard %d: %d unrecoverable (%+v)", i, rep.Unrecovered, rep)
		}
		pool.Close()
	}
}
