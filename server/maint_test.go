package server

import (
	"testing"
	"time"

	"github.com/pangolin-go/pangolin/internal/shard"
)

// startMaintServer boots a server over a fresh set with the given
// options and returns its address.
func startMaintServer(t *testing.T, opts shard.Options) (string, *shard.Set) {
	t.Helper()
	set, err := shard.Create(t.TempDir(), 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(set)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() {
		srv.Shutdown()
		set.Abandon()
	})
	return srv.Addr().String(), set
}

// TestScrubOpEndToEnd exercises SCRUB(11) and INJECT(12) over TCP: a
// client injects live faults, a triggered pass heals them and says so,
// the health block reflects the work, and STATS carries the same scrub
// health fields.
func TestScrubOpEndToEnd(t *testing.T) {
	addr, _ := startMaintServer(t, shard.Options{})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < 512; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	// Health-only SCRUB runs nothing.
	st, err := c.Scrub(false)
	if err != nil {
		t.Fatal(err)
	}
	if st.Ran {
		t.Fatal("mode-0 SCRUB claimed to have run a pass")
	}

	rep, err := c.Inject(2, 6) // mixed seeds: scribbles + poison
	if err != nil {
		t.Fatal(err)
	}
	if rep.Injected == 0 {
		t.Fatal("INJECT corrupted nothing on a populated store")
	}
	if rep.CapableShards == 0 || rep.CapableShards > rep.TotalShards {
		t.Fatalf("INJECT capability counts implausible: %+v", rep)
	}

	st, err = c.Scrub(true)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Ran {
		t.Fatal("mode-1 SCRUB did not run")
	}
	if st.Report.Fixed() == 0 {
		t.Fatalf("pass repaired nothing after %d injections: %+v", rep.Injected, st.Report)
	}
	if st.Report.Unrecovered != 0 {
		t.Fatalf("injected faults unrecoverable: %+v", st.Report)
	}
	if !st.Report.ChecksumsVerified {
		t.Fatalf("MLPC pass must verify checksums: %+v", st.Report)
	}

	// Data intact after healing.
	for k := uint64(0); k < 512; k += 5 {
		v, ok, err := c.Get(k)
		if err != nil || !ok || v != k {
			t.Fatalf("get %d after heal = (%d,%v,%v)", k, v, ok, err)
		}
	}

	// The same health fields ride in STATS.
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ScrubSteps == 0 {
		t.Fatalf("STATS lost scrub health: %+v", stats)
	}
}

// TestScrubBackgroundHealsOverTCP: with the maintenance scheduler on,
// injected corruption is healed with no client request asking for it —
// the bg_repairs counter the loadtest corruption phase gates on.
func TestScrubBackgroundHealsOverTCP(t *testing.T) {
	addr, _ := startMaintServer(t, shard.Options{ScrubInterval: time.Millisecond})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < 512; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Inject(10, 4); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Scrub(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Health.BgRepairs > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background scrubber never repaired: %+v", st.Health)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// last_full_pass_unix advances once every shard wraps a pass.
	deadline = time.Now().Add(10 * time.Second)
	for {
		st, err := c.Scrub(false)
		if err != nil {
			t.Fatal(err)
		}
		if st.Health.LastFullPass > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no full pass completed: %+v", st.Health)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestScrubUnknownMode: a bad mode is rejected with ERR, not silently
// treated as health-or-pass.
func TestScrubUnknownMode(t *testing.T) {
	addr, _ := startMaintServer(t, shard.Options{})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.call(t.Context(), Request{Op: OpScrub, Key: 7}); err == nil {
		t.Fatal("scrub mode 7 accepted")
	}
}
