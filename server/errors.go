package server

import (
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
)

// ErrClientClosed reports use of a Client after Close. In-flight
// operations at Close time resolve with it too — a pipelined client
// never drops an operation silently.
var ErrClientClosed = errors.New("server: client closed")

// ErrNotFound reports a GET or DEL of an absent key, mapped from the
// wire's NOT_FOUND status. The synchronous Get/Del/MGet/MDel signatures
// keep reporting absence through their ok/present booleans (absence is
// not an error there); ErrNotFound surfaces on the async Future surface
// and anywhere a raw status byte is translated.
var ErrNotFound = errors.New("server: key not found")

// ErrShuttingDown reports an operation the server rejected because its
// shard set is shutting down. Every in-flight pipelined operation
// resolves — to a reply or to a typed error like this one — never to a
// silent drop. Compare with errors.Is.
var ErrShuttingDown = shard.ErrShuttingDown

// remoteError is a server-reported failure rebuilt on the client side:
// the message is the server's, and the cause restores the typed error
// class the wire status byte encoded, so errors.Is(err, ErrShuttingDown),
// pangolin.IsCorruption(err), and pangolin.IsPoison(err) hold across the
// network exactly as they do in-process.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.cause }

// errStatus classifies a server-side error as a v2 wire status. v1
// connections never use it — they collapse every failure to StatusErr,
// which v1 clients understand.
func errStatus(err error) uint8 {
	switch {
	case errors.Is(err, shard.ErrShuttingDown):
		return StatusShutdown
	case pangolin.IsCorruption(err):
		return StatusCorrupt
	case pangolin.IsPoison(err):
		return StatusPoison
	default:
		return StatusErr
	}
}

// statusError rebuilds the typed error a response status encodes; nil
// for StatusOK. StatusNotFound maps to ErrNotFound (the typed form of
// the absent-key statuses; sync wrappers translate it back into their
// ok booleans).
func statusError(status uint8, body []byte) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusShutdown:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: ErrShuttingDown}
	case StatusCorrupt:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: &pangolin.CorruptionError{Reason: "reported by server"}}
	case StatusPoison:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: &pangolin.PoisonError{}}
	case StatusErr:
		return fmt.Errorf("server: %s", body)
	default:
		return fmt.Errorf("server: unknown response status %d (body %q)", status, body)
	}
}
