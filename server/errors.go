package server

import (
	"errors"
	"fmt"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/shard"
	"github.com/pangolin-go/pangolin/internal/store"
)

// ErrClientClosed reports use of a Client after Close. In-flight
// operations at Close time resolve with it too — a pipelined client
// never drops an operation silently.
var ErrClientClosed = errors.New("server: client closed")

// ErrNotFound reports a GET or DEL of an absent key, mapped from the
// wire's NOT_FOUND status. The synchronous Get/Del/MGet/MDel signatures
// keep reporting absence through their ok/present booleans (absence is
// not an error there); ErrNotFound surfaces on the async Future surface
// and anywhere a raw status byte is translated.
var ErrNotFound = errors.New("server: key not found")

// ErrShuttingDown reports an operation the server rejected because its
// shard set is shutting down. Every in-flight pipelined operation
// resolves — to a reply or to a typed error like this one — never to a
// silent drop. Compare with errors.Is.
var ErrShuttingDown = shard.ErrShuttingDown

// ErrSnapshotTooOld reports a snapshot scan (or backup) whose pinned
// generation was evicted on the server — the snapshot outlived the
// version buffer's pin or retention caps, or was invalidated — so its
// pages can no longer be proven consistent. Reopen and rescan. Compare
// with errors.Is.
var ErrSnapshotTooOld = store.ErrSnapshotTooOld

// ErrSnapshotUnsupported reports that a shard backend on the server
// lacks the MVCC snapshot capability. The server refuses the snapshot
// outright instead of silently serving per-chunk consistency where
// one committed state was asked for. Compare with errors.Is.
var ErrSnapshotUnsupported = store.ErrSnapshotUnsupported

// ErrCursorMode reports a cursor presented to the wrong scan mode: a
// snapshot continuation without its snapshot id, a snapshot id nobody
// opened, or (client-side, by construction) a snapshot scanner's cursor
// fed to a live Scan. The two modes promise different consistency, so a
// page must never silently continue in the other one. Compare with
// errors.Is.
var ErrCursorMode = errors.New("server: cursor does not belong to this scan mode")

// remoteError is a server-reported failure rebuilt on the client side:
// the message is the server's, and the cause restores the typed error
// class the wire status byte encoded, so errors.Is(err, ErrShuttingDown),
// pangolin.IsCorruption(err), and pangolin.IsPoison(err) hold across the
// network exactly as they do in-process.
type remoteError struct {
	msg   string
	cause error
}

func (e *remoteError) Error() string { return e.msg }

func (e *remoteError) Unwrap() error { return e.cause }

// errStatus classifies a server-side error as a v2 wire status. v1
// connections never use it — they collapse every failure to StatusErr,
// which v1 clients understand.
func errStatus(err error) uint8 {
	switch {
	case errors.Is(err, shard.ErrShuttingDown):
		return StatusShutdown
	case errors.Is(err, store.ErrSnapshotTooOld):
		return StatusSnapTooOld
	case errors.Is(err, store.ErrSnapshotUnsupported):
		return StatusSnapUnsupported
	case errors.Is(err, ErrCursorMode):
		return StatusCursorMode
	case pangolin.IsCorruption(err):
		return StatusCorrupt
	case pangolin.IsPoison(err):
		return StatusPoison
	default:
		return StatusErr
	}
}

// statusError rebuilds the typed error a response status encodes; nil
// for StatusOK. StatusNotFound maps to ErrNotFound (the typed form of
// the absent-key statuses; sync wrappers translate it back into their
// ok booleans).
func statusError(status uint8, body []byte) error {
	switch status {
	case StatusOK:
		return nil
	case StatusNotFound:
		return ErrNotFound
	case StatusShutdown:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: ErrShuttingDown}
	case StatusSnapTooOld:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: ErrSnapshotTooOld}
	case StatusSnapUnsupported:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: ErrSnapshotUnsupported}
	case StatusCursorMode:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: ErrCursorMode}
	case StatusCorrupt:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: &pangolin.CorruptionError{Reason: "reported by server"}}
	case StatusPoison:
		return &remoteError{msg: fmt.Sprintf("server: %s", body), cause: &pangolin.PoisonError{}}
	case StatusErr:
		return fmt.Errorf("server: %s", body)
	default:
		return fmt.Errorf("server: unknown response status %d (body %q)", status, body)
	}
}
