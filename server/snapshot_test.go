package server

import (
	"bufio"
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pangolin-go/pangolin/internal/shard"
)

// TestSnapScanPinnedOverTCP: a paginated SNAPSCAN observes exactly the
// committed state at its first page, no matter what commits land while
// it pages — the wire-level form of the pinned-generation contract.
func TestSnapScanPinnedOverTCP(t *testing.T) {
	addr, _ := startMaintServer(t, shard.Options{Structure: "btree", Backend: "pangolin,logstore"})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 300
	for k := uint64(0); k < n; k++ {
		if err := c.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
	}
	sc := c.SnapScan(0, ^uint64(0))
	first, err := sc.Next(32) // pins the snapshot
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite, delete, and insert behind the scan's back.
	for k := uint64(0); k < n; k += 2 {
		if err := c.Put(k, 999_999); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k < n; k += 2 {
		if _, err := c.Del(k); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put(n+10, 1); err != nil {
		t.Fatal(err)
	}
	got := first
	for !sc.Done() {
		page, err := sc.Next(32)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, page...)
	}
	if len(got) != n {
		t.Fatalf("snapshot scan yielded %d pairs, want %d", len(got), n)
	}
	for i, p := range got {
		if p.K != uint64(i) || p.V != p.K*3 {
			t.Fatalf("pair %d = (%d,%d), want the pinned (%d,%d)", i, p.K, p.V, i, uint64(i)*3)
		}
	}
	// The terminal page released the pins.
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotPins != 0 {
		t.Fatalf("pins after a completed scan = %d, want 0", st.SnapshotPins)
	}
	if st.SnapScans == 0 {
		t.Fatal("snap_scans counter stayed zero")
	}
}

// TestSnapScanConnCloseReleasesPins: an abandoned scan must not leak its
// pins past its connection — teardown releases them without a worker
// round-trip.
func TestSnapScanConnCloseReleasesPins(t *testing.T) {
	addr, set := startMaintServer(t, shard.Options{Structure: "btree"})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 200; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	sc := c.SnapScan(0, ^uint64(0))
	if _, err := sc.Next(8); err != nil { // more pages remain: pins held
		t.Fatal(err)
	}
	if sc.Done() {
		t.Fatal("an 8-pair page over 200 keys claimed the scan was done")
	}
	if pins := set.Stats().SnapshotPins; pins == 0 {
		t.Fatal("no pins held mid-scan")
	}
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for set.Stats().SnapshotPins != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("connection close leaked %d pins", set.Stats().SnapshotPins)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSnapScanCursorModeAndCap pins the cursor contract on the wire: a
// continuation cursor without its snapshot id, or an id nobody opened,
// is refused with the typed cursor-mode status — never answered with a
// page of the other consistency mode — and a connection cannot hold
// more than MaxConnSnapshots scans open at once.
func TestSnapScanCursorModeAndCap(t *testing.T) {
	addr, _ := startMaintServer(t, shard.Options{Structure: "btree"})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for k := uint64(0); k < 400; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}

	// Hand-rolled v1 frames (the pipelined client cannot emit these
	// shapes by construction).
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bw, br := bufio.NewWriter(conn), bufio.NewReader(conn)
	rawStatus := func(req Request) uint8 {
		t.Helper()
		payload, err := EncodeRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteFrame(bw, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		frame, err := ReadFrame(br, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) == 0 {
			t.Fatal("empty response frame")
		}
		return frame[0]
	}
	// Continuation cursor with no snapshot id: which snapshot is this?
	if s := rawStatus(Request{Op: OpSnapScan, Key: 0, Val: ^uint64(0), Limit: 10, Cursor: 5}); s != StatusCursorMode {
		t.Fatalf("cursor-without-snapid status = %d, want StatusCursorMode", s)
	}
	// A snapshot id nobody opened (e.g. a live scan's cursor smuggled
	// into snapshot mode, or a stale id from another connection).
	if s := rawStatus(Request{Op: OpSnapScan, Key: 0, Val: ^uint64(0), Limit: 10, Cursor: 5, SnapID: 424242}); s != StatusCursorMode {
		t.Fatalf("unknown-snapid status = %d, want StatusCursorMode", s)
	}
	// The typed error round-trips through the client's status decoding.
	if err := statusError(StatusCursorMode, []byte("x")); !errors.Is(err, ErrCursorMode) {
		t.Fatalf("StatusCursorMode decoded to %v, want ErrCursorMode", err)
	}

	// Cap: MaxConnSnapshots scans in flight on one connection, then the
	// next open is refused until one finishes.
	scanners := make([]*SnapScanner, MaxConnSnapshots)
	for i := range scanners {
		scanners[i] = c.SnapScan(0, ^uint64(0))
		if _, err := scanners[i].Next(4); err != nil {
			t.Fatalf("scanner %d: %v", i, err)
		}
	}
	over := c.SnapScan(0, ^uint64(0))
	if _, err := over.Next(4); err == nil || !strings.Contains(err.Error(), "snapshots") {
		t.Fatalf("scan #%d opened past the cap (err=%v)", MaxConnSnapshots+1, err)
	}
	// Draining one scan frees its slot.
	for !scanners[0].Done() {
		if _, err := scanners[0].Next(0); err != nil {
			t.Fatal(err)
		}
	}
	fresh := c.SnapScan(0, ^uint64(0))
	if _, err := fresh.Next(4); err != nil {
		t.Fatalf("open after freeing a slot: %v", err)
	}
}

// TestBackupUnderWritesRestores: BACKUP taken while writers commit must
// stream one generation-consistent image — every record satisfies the
// writers' per-key invariant, no key twice, ascending — and replaying
// it into a fresh set reproduces exactly that image, which then scrubs
// clean. This is the in-process form of the loadtest's backup gate.
func TestBackupUnderWritesRestores(t *testing.T) {
	addr, set := startMaintServer(t, shard.Options{Structure: "btree", Backend: "pangolin,logstore"})
	c, err := Dial(t.Context(), addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const keys = 600
	for k := uint64(0); k < keys; k++ {
		if err := c.Put(k, k^0xF00D); err != nil {
			t.Fatal(err)
		}
	}
	// Writers keep churning the same keyspace; every present key always
	// maps to k^0xF00D, so any consistent image satisfies that invariant
	// while an inconsistent smear cannot be detected by it — consistency
	// itself is proven by the shard/store suites; here the stream's
	// shape and the restore round-trip are under test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			wc, err := Dial(context.Background(), addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % keys
				if rng.Intn(4) == 0 {
					if _, err := wc.Del(k); err != nil {
						t.Error(err)
						return
					}
				} else if err := wc.Put(k, k^0xF00D); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}

	image := make(map[uint64]uint64)
	var lastKey uint64
	first := true
	err = Backup(context.Background(), addr, func(k, v uint64) bool {
		if _, dup := image[k]; dup {
			t.Errorf("backup streamed key %d twice", k)
			return false
		}
		if !first && k <= lastKey {
			t.Errorf("backup stream out of order: %d after %d", k, lastKey)
			return false
		}
		if v != k^0xF00D {
			t.Errorf("backup pair (%d,%d) violates the writer invariant", k, v)
			return false
		}
		first, lastKey = false, k
		image[k] = v
		return true
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(image) == 0 {
		t.Fatal("backup streamed nothing")
	}
	if pins := set.Stats().SnapshotPins; pins != 0 {
		t.Fatalf("backup left %d pins held", pins)
	}

	// Restore into a fresh set and verify it IS the image.
	raddr, rset := startMaintServer(t, shard.Options{Structure: "btree"})
	rc, err := Dial(t.Context(), raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	ks := make([]uint64, 0, MaxBatchOps)
	vs := make([]uint64, 0, MaxBatchOps)
	flush := func() {
		if len(ks) == 0 {
			return
		}
		if err := rc.MPut(ks, vs); err != nil {
			t.Fatal(err)
		}
		ks, vs = ks[:0], vs[:0]
	}
	for k, v := range image {
		ks, vs = append(ks, k), append(vs, v)
		if len(ks) == MaxBatchOps {
			flush()
		}
	}
	flush()
	if err := rc.Sync(); err != nil {
		t.Fatal(err)
	}
	restored := 0
	if err := rc.ScanAll(0, ^uint64(0), func(k, v uint64) bool {
		want, ok := image[k]
		if !ok || v != want {
			t.Errorf("restored pair (%d,%d) not in the backup image (want %d, present %v)", k, v, want, ok)
		}
		restored++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if restored != len(image) {
		t.Fatalf("restored set has %d pairs, image has %d", restored, len(image))
	}
	// The restored shards scrub clean — the test-level stand-in for the
	// loadtest's `pglpool check` gate.
	rep, err := rset.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unrecovered != 0 || rep.PagesUnrecovered != 0 {
		t.Fatalf("restored set scrubbed dirty: %+v", rep)
	}
}
