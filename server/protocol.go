package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: every message is a length-prefixed frame.
//
//	frame   := length(uint32 BE) payload
//	request := op(1 B) fields…          fields are uint64 BE
//	response:= status(1 B) body…
//
// See doc.go for the full grammar. The frame length covers the payload
// only, not the 4-byte prefix.

// Request opcodes.
const (
	OpGet   uint8 = 1 // key → value
	OpPut   uint8 = 2 // key, value
	OpDel   uint8 = 3 // key
	OpStats uint8 = 4 // → JSON body
	OpSync  uint8 = 5 // save every shard snapshot
	OpCrash uint8 = 6 // seed → write crash images, then the server dies
)

// Response status codes.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusErr      uint8 = 2 // body is a UTF-8 message
)

// MaxFrame bounds a frame payload; stats JSON for even thousands of shards
// stays far below it, so anything larger is a corrupt or hostile stream.
const MaxFrame = 1 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf when it is large enough.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// Request is a decoded client request. Single-field ops (OpGet, OpDel,
// OpCrash) carry their field — key or seed — in Key.
type Request struct {
	Op  uint8
	Key uint64
	Val uint64 // OpPut only
}

// fieldCount returns how many uint64 fields op carries.
func fieldCount(op uint8) (int, error) {
	switch op {
	case OpGet, OpDel:
		return 1, nil
	case OpPut:
		return 2, nil
	case OpStats, OpSync:
		return 0, nil
	case OpCrash:
		return 1, nil
	default:
		return 0, fmt.Errorf("server: unknown opcode %d", op)
	}
}

// EncodeRequest appends req's wire form to b.
func EncodeRequest(b []byte, req Request) ([]byte, error) {
	n, err := fieldCount(req.Op)
	if err != nil {
		return nil, err
	}
	b = append(b, req.Op)
	if n >= 1 {
		b = appendU64(b, req.Key)
	}
	if n >= 2 {
		b = appendU64(b, req.Val)
	}
	return b, nil
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < 1 {
		return Request{}, fmt.Errorf("server: empty request")
	}
	req := Request{Op: p[0]}
	n, err := fieldCount(req.Op)
	if err != nil {
		return Request{}, err
	}
	if len(p) != 1+8*n {
		return Request{}, fmt.Errorf("server: op %d wants %d bytes, got %d", req.Op, 1+8*n, len(p))
	}
	if n >= 1 {
		req.Key = binary.BigEndian.Uint64(p[1:])
	}
	if n >= 2 {
		req.Val = binary.BigEndian.Uint64(p[9:])
	}
	return req, nil
}

// EncodeResponse appends a response payload to b: status, then body.
func EncodeResponse(b []byte, status uint8, body []byte) []byte {
	b = append(b, status)
	return append(b, body...)
}

// DecodeResponse splits a response payload into status and body.
func DecodeResponse(p []byte) (uint8, []byte, error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("server: empty response")
	}
	return p[0], p[1:], nil
}
