package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: every message is a length-prefixed frame.
//
//	frame   := length(uint32 BE) payload
//	request := op(1 B) fields…          fields are uint64 BE
//	response:= status(1 B) body…
//
// See doc.go for the full grammar. The frame length covers the payload
// only, not the 4-byte prefix.

// Request opcodes.
const (
	OpGet   uint8 = 1  // key → value
	OpPut   uint8 = 2  // key, value
	OpDel   uint8 = 3  // key
	OpStats uint8 = 4  // → JSON body
	OpSync  uint8 = 5  // save every shard snapshot
	OpCrash uint8 = 6  // seed → write crash images, then the server dies
	OpMGet   uint8 = 7  // N keys → N (found, value) records
	OpMPut   uint8 = 8  // N (key, value) pairs → N status bytes
	OpMDel   uint8 = 9  // N keys → N status bytes
	OpScan   uint8 = 10 // lo, hi, limit, cursor → more, next-cursor, (key value)*
	OpScrub  uint8 = 11 // mode (0 health only, 1 run a full pass) → JSON body
	OpInject uint8 = 12 // seed, count → injected count (fault-injection test hook)
)

// Per-op status bytes inside an MGET/MPUT/MDEL response body (the frame
// status byte stays StatusOK; these describe each op).
const (
	BatchOK       uint8 = 0
	BatchNotFound uint8 = 1
	BatchErr      uint8 = 2
)

// MaxBatchOps caps the ops in one MGET/MPUT/MDEL request: enough to keep
// every shard's group-commit window full, small enough that one frame
// can't pin megabytes per connection.
const MaxBatchOps = 4096

// MaxScanPairs caps the pairs one SCAN response frame carries; a request
// with a zero or larger limit is clamped to it. Deeper scans paginate
// with the response's next-cursor.
const MaxScanPairs = 4096

// Response status codes.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusErr      uint8 = 2 // body is a UTF-8 message
)

// MaxFrame bounds a frame payload; stats JSON for even thousands of shards
// stays far below it, so anything larger is a corrupt or hostile stream.
const MaxFrame = 1 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf when it is large enough.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// Request is a decoded client request. Single-field ops (OpGet, OpDel,
// OpCrash, OpScrub) carry their field — key, seed, or scrub mode — in
// Key. OpInject carries its seed in Key and its fault count in Val.
// OpScan carries its bounds in Key (lo) and Val (hi) plus Limit and
// Cursor. Batch ops carry Keys (MGET, MDEL) or Keys+Vals pairwise
// (MPUT); decoded slices alias nothing and are safe to retain.
type Request struct {
	Op     uint8
	Key    uint64
	Val    uint64   // OpPut value; OpScan hi bound
	Limit  uint64   // OpScan only: max pairs in the response
	Cursor uint64   // OpScan only: resume key (0 on a fresh scan)
	Keys   []uint64 // OpMGet, OpMPut, OpMDel
	Vals   []uint64 // OpMPut only
}

// fields returns the fixed uint64 fields an op carries, in wire order.
func (r *Request) fields() [4]*uint64 {
	return [4]*uint64{&r.Key, &r.Val, &r.Limit, &r.Cursor}
}

// fieldCount returns how many uint64 fields a fixed-shape op carries, or
// -1 for the variable-length batch ops.
func fieldCount(op uint8) (int, error) {
	switch op {
	case OpGet, OpDel:
		return 1, nil
	case OpPut:
		return 2, nil
	case OpStats, OpSync:
		return 0, nil
	case OpCrash, OpScrub:
		return 1, nil
	case OpInject:
		return 2, nil
	case OpScan:
		return 4, nil
	case OpMGet, OpMPut, OpMDel:
		return -1, nil
	default:
		return 0, fmt.Errorf("server: unknown opcode %d", op)
	}
}

// batchStride is the bytes per op in a batch request payload.
func batchStride(op uint8) int {
	if op == OpMPut {
		return 16 // key + value
	}
	return 8 // key
}

// checkBatchLen validates a batch op count against its protocol cap.
func checkBatchLen(op uint8, n int) error {
	if n == 0 {
		return fmt.Errorf("server: op %d with zero ops", op)
	}
	if n > MaxBatchOps {
		return fmt.Errorf("server: op %d with %d ops exceeds limit %d", op, n, MaxBatchOps)
	}
	return nil
}

// EncodeRequest appends req's wire form to b.
func EncodeRequest(b []byte, req Request) ([]byte, error) {
	n, err := fieldCount(req.Op)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		if err := checkBatchLen(req.Op, len(req.Keys)); err != nil {
			return nil, err
		}
		if req.Op == OpMPut && len(req.Vals) != len(req.Keys) {
			return nil, fmt.Errorf("server: MPUT with %d keys, %d values", len(req.Keys), len(req.Vals))
		}
		b = append(b, req.Op)
		for i, k := range req.Keys {
			b = appendU64(b, k)
			if req.Op == OpMPut {
				b = appendU64(b, req.Vals[i])
			}
		}
		return b, nil
	}
	b = append(b, req.Op)
	for i, f := range req.fields() {
		if i >= n {
			break
		}
		b = appendU64(b, *f)
	}
	return b, nil
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < 1 {
		return Request{}, fmt.Errorf("server: empty request")
	}
	req := Request{Op: p[0]}
	n, err := fieldCount(req.Op)
	if err != nil {
		return Request{}, err
	}
	if n < 0 {
		stride := batchStride(req.Op)
		if (len(p)-1)%stride != 0 {
			return Request{}, fmt.Errorf("server: op %d payload of %d bytes is not a whole number of %d-byte ops",
				req.Op, len(p), stride)
		}
		count := (len(p) - 1) / stride
		if err := checkBatchLen(req.Op, count); err != nil {
			return Request{}, err
		}
		req.Keys = make([]uint64, count)
		if req.Op == OpMPut {
			req.Vals = make([]uint64, count)
		}
		for i := 0; i < count; i++ {
			off := 1 + i*stride
			req.Keys[i] = binary.BigEndian.Uint64(p[off:])
			if req.Op == OpMPut {
				req.Vals[i] = binary.BigEndian.Uint64(p[off+8:])
			}
		}
		return req, nil
	}
	if len(p) != 1+8*n {
		return Request{}, fmt.Errorf("server: op %d wants %d bytes, got %d", req.Op, 1+8*n, len(p))
	}
	for i, f := range req.fields() {
		if i >= n {
			break
		}
		*f = binary.BigEndian.Uint64(p[1+8*i:])
	}
	return req, nil
}

// EncodeResponse appends a response payload to b: status, then body.
func EncodeResponse(b []byte, status uint8, body []byte) []byte {
	b = append(b, status)
	return append(b, body...)
}

// DecodeResponse splits a response payload into status and body.
func DecodeResponse(p []byte) (uint8, []byte, error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("server: empty response")
	}
	return p[0], p[1:], nil
}
