package server

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: every message is a length-prefixed frame.
//
//	frame   := length(uint32 BE) payload
//
// Two payload layouts exist, negotiated per connection by the first frame
// (see doc.go for the full grammar; the frame length covers the payload
// only, not the 4-byte prefix):
//
//	v1 request  := op(1 B) fields…                 fields are uint64 BE
//	v1 response := status(1 B) body…               in request order
//
//	v2 request  := seq(uint64 BE) op(1 B) fields…  client-chosen sequence
//	v2 response := seq(uint64 BE) status(1 B) body…  may arrive out of order
//
// A connection whose first frame is a HELLO (OpHello with the magic)
// speaks v2 from the next frame on; any other first frame selects v1 —
// the original one-op-per-frame, in-order protocol, kept as the
// degenerate case.

// Request opcodes.
const (
	OpGet    uint8 = 1  // key → value
	OpPut    uint8 = 2  // key, value
	OpDel    uint8 = 3  // key
	OpStats  uint8 = 4  // → JSON body
	OpSync   uint8 = 5  // save every shard snapshot
	OpCrash  uint8 = 6  // seed → write crash images, then the server dies
	OpMGet   uint8 = 7  // N keys → N (found, value) records
	OpMPut   uint8 = 8  // N (key, value) pairs → N status bytes
	OpMDel   uint8 = 9  // N keys → N status bytes
	OpScan   uint8 = 10 // lo, hi, limit, cursor → more, next-cursor, (key value)*
	OpScrub  uint8 = 11 // mode (0 health only, 1 run a full pass) → JSON body
	OpInject uint8 = 12 // seed, count → injected, capable, total (fault-injection test hook)
	OpHello  uint8 = 13 // magic, version, window → negotiate protocol v2
	// OpSnapScan is OpScan at a pinned generation: the first page (snapid
	// 0, cursor 0) opens a connection-owned snapshot and the reply names
	// it; continuations carry that snapid with the reply's next-cursor.
	// Every page of one snapid observes the same committed state. A
	// continuation without its snapid is a cursor-mode violation
	// (StatusCursorMode), never a silently-live page.
	OpSnapScan uint8 = 14 // lo, hi, limit, cursor, snapid → snapid, more, next-cursor, (key value)*
	// OpBackup streams the whole keyspace at one pinned snapshot as a
	// multi-frame response; v1 connections only (the v2 one-reply-per-seq
	// contract cannot carry a stream).
	OpBackup uint8 = 15 // → (status, more, (key value)*)* frames
)

// HelloMagic guards HELLO frames against a v1 client whose first request
// happens to carry opcode 13: without the magic the frame is (rejected
// as) a v1 request, never a protocol switch.
const HelloMagic uint64 = 0x50474c2d50495045 // "PGL-PIPE"

// ProtocolV2 is the pipelined protocol version HELLO negotiates.
const ProtocolV2 uint64 = 2

// Window bounds for the per-connection in-flight window HELLO negotiates:
// the server grants min(requested, MaxWindow) (at least 1) and sizes the
// connection's completion buffering by the grant, so the grant is also
// the server's per-connection memory bound under overload.
const (
	DefaultWindow = 256  // granted when the client requests 0
	MaxWindow     = 1024 // server-side cap on any request
)

// Per-op status bytes inside an MGET/MPUT/MDEL response body (the frame
// status byte stays StatusOK; these describe each op).
const (
	BatchOK       uint8 = 0
	BatchNotFound uint8 = 1
	BatchErr      uint8 = 2
)

// MaxBatchOps caps the ops in one MGET/MPUT/MDEL request: enough to keep
// every shard's group-commit window full, small enough that one frame
// can't pin megabytes per connection.
const MaxBatchOps = 4096

// MaxScanPairs caps the pairs one SCAN response frame carries; a request
// with a zero or larger limit is clamped to it. Deeper scans paginate
// with the response's next-cursor.
const MaxScanPairs = 4096

// Response status codes. v1 connections only ever see the first three
// (errors collapse to StatusErr, which old clients understand); v2
// responses classify failures so the client can rebuild typed errors —
// the body is a UTF-8 message for every status ≥ StatusErr.
const (
	StatusOK       uint8 = 0
	StatusNotFound uint8 = 1
	StatusErr      uint8 = 2 // body is a UTF-8 message
	StatusCorrupt  uint8 = 3 // v2: pangolin.IsCorruption on the server side
	StatusPoison   uint8 = 4 // v2: pangolin.IsPoison on the server side
	StatusShutdown uint8 = 5 // v2: the shard set is shutting down
	// Snapshot statuses, used on both protocol versions (the ops that
	// produce them postdate v1 clients, so there is no old decoder to
	// protect). SnapTooOld: the pinned generation was evicted (caps,
	// release, engine invalidation) — reopen and rescan. SnapUnsupported:
	// a shard backend lacks the snapshot capability; the server refuses
	// rather than silently serving a weaker scan. CursorMode: a cursor
	// was presented to the wrong scan mode (a snapshot continuation
	// without its snapid, or a snapid nobody opened).
	StatusSnapTooOld      uint8 = 6
	StatusSnapUnsupported uint8 = 7
	StatusCursorMode      uint8 = 8
)

// MaxConnSnapshots caps the snapshots one connection may hold open at
// once. Each open snapshot pins a generation on every shard (pre-images
// of overwritten objects accumulate until release), so the cap bounds
// what one client can make the write path retain; a dropped connection
// releases all of its pins.
const MaxConnSnapshots = 4

// MaxFrame bounds a frame payload; stats JSON for even thousands of shards
// stays far below it, so anything larger is a corrupt or hostile stream.
const MaxFrame = 1 << 20

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame payload, reusing buf when it is large enough.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func appendU64(b []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(b, v)
}

// Request is a decoded client request. Single-field ops (OpGet, OpDel,
// OpCrash, OpScrub) carry their field — key, seed, or scrub mode — in
// Key. OpInject carries its seed in Key and its fault count in Val.
// OpScan carries its bounds in Key (lo) and Val (hi) plus Limit and
// Cursor. OpHello carries its magic in Key, version in Val, and
// requested window in Limit. Batch ops carry Keys (MGET, MDEL) or
// Keys+Vals pairwise (MPUT); decoded slices alias nothing and are safe
// to retain.
type Request struct {
	Op     uint8
	Key    uint64
	Val    uint64   // OpPut value; OpScan/OpSnapScan hi bound
	Limit  uint64   // OpScan/OpSnapScan only: max pairs in the response
	Cursor uint64   // OpScan/OpSnapScan only: resume key (0 on a fresh scan)
	SnapID uint64   // OpSnapScan only: 0 opens a snapshot, else continues one
	Keys   []uint64 // OpMGet, OpMPut, OpMDel
	Vals   []uint64 // OpMPut only
}

// fields returns the fixed uint64 fields an op carries, in wire order.
func (r *Request) fields() [5]*uint64 {
	return [5]*uint64{&r.Key, &r.Val, &r.Limit, &r.Cursor, &r.SnapID}
}

// fieldCount returns how many uint64 fields a fixed-shape op carries, or
// -1 for the variable-length batch ops.
func fieldCount(op uint8) (int, error) {
	switch op {
	case OpGet, OpDel:
		return 1, nil
	case OpPut:
		return 2, nil
	case OpStats, OpSync, OpBackup:
		return 0, nil
	case OpCrash, OpScrub:
		return 1, nil
	case OpInject:
		return 2, nil
	case OpHello:
		return 3, nil // magic, version, window
	case OpScan:
		return 4, nil
	case OpSnapScan:
		return 5, nil // lo, hi, limit, cursor, snapid
	case OpMGet, OpMPut, OpMDel:
		return -1, nil
	default:
		return 0, fmt.Errorf("server: unknown opcode %d", op)
	}
}

// batchStride is the bytes per op in a batch request payload.
func batchStride(op uint8) int {
	if op == OpMPut {
		return 16 // key + value
	}
	return 8 // key
}

// checkBatchLen validates a batch op count against its protocol cap.
func checkBatchLen(op uint8, n int) error {
	if n == 0 {
		return fmt.Errorf("server: op %d with zero ops", op)
	}
	if n > MaxBatchOps {
		return fmt.Errorf("server: op %d with %d ops exceeds limit %d", op, n, MaxBatchOps)
	}
	return nil
}

// EncodeRequest appends req's wire form to b.
func EncodeRequest(b []byte, req Request) ([]byte, error) {
	n, err := fieldCount(req.Op)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		if err := checkBatchLen(req.Op, len(req.Keys)); err != nil {
			return nil, err
		}
		if req.Op == OpMPut && len(req.Vals) != len(req.Keys) {
			return nil, fmt.Errorf("server: MPUT with %d keys, %d values", len(req.Keys), len(req.Vals))
		}
		b = append(b, req.Op)
		for i, k := range req.Keys {
			b = appendU64(b, k)
			if req.Op == OpMPut {
				b = appendU64(b, req.Vals[i])
			}
		}
		return b, nil
	}
	b = append(b, req.Op)
	for i, f := range req.fields() {
		if i >= n {
			break
		}
		b = appendU64(b, *f)
	}
	return b, nil
}

// DecodeRequest parses a request payload.
func DecodeRequest(p []byte) (Request, error) {
	if len(p) < 1 {
		return Request{}, fmt.Errorf("server: empty request")
	}
	req := Request{Op: p[0]}
	n, err := fieldCount(req.Op)
	if err != nil {
		return Request{}, err
	}
	if n < 0 {
		stride := batchStride(req.Op)
		if (len(p)-1)%stride != 0 {
			return Request{}, fmt.Errorf("server: op %d payload of %d bytes is not a whole number of %d-byte ops",
				req.Op, len(p), stride)
		}
		count := (len(p) - 1) / stride
		if err := checkBatchLen(req.Op, count); err != nil {
			return Request{}, err
		}
		req.Keys = make([]uint64, count)
		if req.Op == OpMPut {
			req.Vals = make([]uint64, count)
		}
		for i := 0; i < count; i++ {
			off := 1 + i*stride
			req.Keys[i] = binary.BigEndian.Uint64(p[off:])
			if req.Op == OpMPut {
				req.Vals[i] = binary.BigEndian.Uint64(p[off+8:])
			}
		}
		return req, nil
	}
	if len(p) != 1+8*n {
		return Request{}, fmt.Errorf("server: op %d wants %d bytes, got %d", req.Op, 1+8*n, len(p))
	}
	for i, f := range req.fields() {
		if i >= n {
			break
		}
		*f = binary.BigEndian.Uint64(p[1+8*i:])
	}
	return req, nil
}

// decodeRequestInto parses a request payload into *req, reusing the
// capacity of req.Keys and req.Vals from the previous decode. The
// decoded slices are valid only until the next decodeRequestInto on
// the same req, so the caller must fully consume one request before
// decoding the next — the synchronous v1 loop does. Concurrent
// handlers (the v2 dispatch goroutines, which outlive the reader's
// next frame) must keep using DecodeRequest, whose slices are freshly
// allocated.
func decodeRequestInto(p []byte, req *Request) error {
	if len(p) < 1 {
		return fmt.Errorf("server: empty request")
	}
	keys, vals := req.Keys[:0], req.Vals[:0]
	*req = Request{Op: p[0]}
	n, err := fieldCount(req.Op)
	if err != nil {
		return err
	}
	if n < 0 {
		stride := batchStride(req.Op)
		if (len(p)-1)%stride != 0 {
			return fmt.Errorf("server: op %d payload of %d bytes is not a whole number of %d-byte ops",
				req.Op, len(p), stride)
		}
		count := (len(p) - 1) / stride
		if err := checkBatchLen(req.Op, count); err != nil {
			return err
		}
		for i := 0; i < count; i++ {
			off := 1 + i*stride
			keys = append(keys, binary.BigEndian.Uint64(p[off:]))
			if req.Op == OpMPut {
				vals = append(vals, binary.BigEndian.Uint64(p[off+8:]))
			}
		}
		req.Keys = keys
		if req.Op == OpMPut {
			req.Vals = vals
		}
		return nil
	}
	if len(p) != 1+8*n {
		return fmt.Errorf("server: op %d wants %d bytes, got %d", req.Op, 1+8*n, len(p))
	}
	for i, f := range req.fields() {
		if i >= n {
			break
		}
		*f = binary.BigEndian.Uint64(p[1+8*i:])
	}
	return nil
}

// EncodeResponse appends a response payload to b: status, then body.
func EncodeResponse(b []byte, status uint8, body []byte) []byte {
	b = append(b, status)
	return append(b, body...)
}

// DecodeResponse splits a response payload into status and body.
func DecodeResponse(p []byte) (uint8, []byte, error) {
	if len(p) < 1 {
		return 0, nil, fmt.Errorf("server: empty response")
	}
	return p[0], p[1:], nil
}

// EncodeRequestSeq appends req's v2 wire form — seq, then the v1 request
// layout — to b.
func EncodeRequestSeq(b []byte, seq uint64, req Request) ([]byte, error) {
	b = appendU64(b, seq)
	out, err := EncodeRequest(b, req)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeRequestSeq parses a v2 request payload: the sequence number, then
// the request. A payload too short to carry a sequence number cannot be
// answered at all (there is no seq to echo), so the caller must treat
// that error as a corrupt stream and drop the connection.
func DecodeRequestSeq(p []byte) (uint64, Request, error) {
	if len(p) < 8 {
		return 0, Request{}, fmt.Errorf("server: v2 request of %d bytes has no sequence number", len(p))
	}
	seq := binary.BigEndian.Uint64(p)
	req, err := DecodeRequest(p[8:])
	return seq, req, err
}

// EncodeResponseSeq appends a v2 response payload to b: the echoed
// sequence number, then status and body.
func EncodeResponseSeq(b []byte, seq uint64, status uint8, body []byte) []byte {
	b = appendU64(b, seq)
	return EncodeResponse(b, status, body)
}

// DecodeResponseSeq splits a v2 response payload into its echoed
// sequence number, status, and body.
func DecodeResponseSeq(p []byte) (uint64, uint8, []byte, error) {
	if len(p) < 9 {
		return 0, 0, nil, fmt.Errorf("server: v2 response of %d bytes", len(p))
	}
	return binary.BigEndian.Uint64(p), p[8], p[9:], nil
}

// DecodeHello reports whether a first frame is a v2 HELLO: a well-formed
// OpHello request carrying the magic. Anything else — including opcode
// 13 without the magic — leaves the connection on protocol v1.
func DecodeHello(p []byte) (version, window uint64, ok bool) {
	req, err := DecodeRequest(p)
	if err != nil || req.Op != OpHello || req.Key != HelloMagic {
		return 0, 0, false
	}
	return req.Val, req.Limit, true
}

// GrantWindow clamps a HELLO's requested in-flight window to the
// server's bounds: 0 asks for the default, and nothing exceeds
// MaxWindow.
func GrantWindow(requested uint64) int {
	switch {
	case requested == 0:
		return DefaultWindow
	case requested > MaxWindow:
		return MaxWindow
	default:
		return int(requested)
	}
}
