package server

import (
	"sync"
	"sync/atomic"
)

// The frame pool backs every hot-path wire buffer on both sides of a
// connection: v2 completion frames on the server, request frames on
// the client. Pooling them converts the per-op frame allocation into a
// pointer swap, which is where most of the protocol layer's GC
// pressure lived before this pool existed.
//
// Ownership contract (the long form lives in doc.go):
//
//   - A frame fetched with getFrame is owned exclusively by the getter
//     until it hands the frame to the connection's writer (the v2
//     writeLoop on the server, the client writeLoop on the client).
//   - The writer releases the frame back to the pool immediately after
//     the bytes reach the bufio layer. Nothing may retain a pointer
//     into f.b past that hand-off: values that must outlive the frame
//     (GET bodies delivered to callers, verified-read results) are
//     copied out before the frame is queued for writing.
//   - Frames are laid out as [4-byte length][payload]; the length
//     prefix is patched in place by finishFrame so header and payload
//     leave in one bufio write instead of two (the separate header
//     write made the stack header escape through the io.Writer
//     interface — one heap allocation per frame).
//
// poisonFrames is the test hook behind the -race torture: when set,
// every released frame is scribbled with a poison byte first, so any
// reader still aliasing recycled memory sees garbage deterministically
// instead of only under rare reuse timing.

// frameBuf wraps the byte slice so the pool traffics in pointers —
// storing slices directly would re-box the header on every Put.
type frameBuf struct {
	b []byte
}

// maxPooledFrame caps what recycles: oversized scan/stats frames are
// dropped so one large response cannot pin megabytes in the pool.
const maxPooledFrame = 64 << 10

const frameHeaderLen = 4

var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 256)} },
}

var poisonFrames atomic.Bool

func getFrame() *frameBuf {
	return framePool.Get().(*frameBuf)
}

func putFrame(f *frameBuf) {
	if f == nil || cap(f.b) > maxPooledFrame {
		return
	}
	if poisonFrames.Load() {
		b := f.b[:cap(f.b)]
		for i := range b {
			b[i] = 0xDB
		}
	}
	f.b = f.b[:0]
	framePool.Put(f)
}

// beginFrame resets a frame to the reserved length prefix; the caller
// appends the payload and calls finishFrame before queueing it.
func beginFrame(f *frameBuf) []byte {
	return append(f.b[:0], 0, 0, 0, 0)
}

// finishFrame patches the length prefix for a buffer laid out by
// beginFrame. The frame is then ready for a single-write hand-off.
func finishFrame(b []byte) []byte {
	n := len(b) - frameHeaderLen
	_ = b[3]
	b[0] = byte(n >> 24)
	b[1] = byte(n >> 16)
	b[2] = byte(n >> 8)
	b[3] = byte(n)
	return b
}
