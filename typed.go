package pangolin

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"
)

// Typed views give the C-like programming feel of the paper's listings:
// a persistent object is declared as a plain Go struct (fixed size, no Go
// pointers — persistent references are OIDs) and accessed through a typed
// pointer into the micro-buffer or NVMM bytes.
//
//	type Node struct {
//	    Next  pangolin.OID
//	    Value uint64
//	}
//	n, _ := pangolin.Open[Node](tx, oid)
//	n.Value = 42

var podCache sync.Map // reflect.Type → error (nil if valid)

// checkPOD verifies that T is safe to overlay on persistent bytes: fixed
// size and free of Go pointers (pointers, maps, slices, strings, chans,
// funcs, interfaces). The result is cached per type.
func checkPOD(t reflect.Type) error {
	if v, ok := podCache.Load(t); ok {
		if v == nil {
			return nil
		}
		return v.(error)
	}
	err := validatePOD(t)
	if err == nil {
		podCache.Store(t, nil)
	} else {
		podCache.Store(t, err)
	}
	return err
}

func validatePOD(t reflect.Type) error {
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64, reflect.Complex64, reflect.Complex128:
		return nil
	case reflect.Array:
		return validatePOD(t.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if err := validatePOD(t.Field(i).Type); err != nil {
				return fmt.Errorf("field %s: %w", t.Field(i).Name, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("kind %v cannot live in persistent memory (store OIDs, not Go pointers)", t.Kind())
	}
}

// View reinterprets data as *T. T must be pointer-free and fit in data;
// data must come from this library (micro-buffer or device views are
// 8-byte aligned).
func View[T any](data []byte) (*T, error) {
	var zero T
	t := reflect.TypeOf(zero)
	if err := checkPOD(t); err != nil {
		return nil, fmt.Errorf("pangolin: type %T: %w", zero, err)
	}
	if uint64(t.Size()) > uint64(len(data)) {
		return nil, fmt.Errorf("pangolin: type %T (%d B) exceeds object data (%d B)", zero, t.Size(), len(data))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("pangolin: empty data")
	}
	if uintptr(unsafe.Pointer(&data[0]))%uintptr(t.Align()) != 0 {
		return nil, fmt.Errorf("pangolin: data misaligned for %T", zero)
	}
	return (*T)(unsafe.Pointer(&data[0])), nil
}

// SizeOf returns T's persistent size.
func SizeOf[T any]() uint64 {
	var zero T
	return uint64(reflect.TypeOf(zero).Size())
}

// Alloc allocates an object sized for T and returns a typed view of its
// (zeroed) user data.
func Alloc[T any](tx *Tx, typ uint32) (OID, *T, error) {
	oid, data, err := tx.Alloc(SizeOf[T](), typ)
	if err != nil {
		return NilOID, nil, err
	}
	v, err := View[T](data)
	if err != nil {
		return NilOID, nil, err
	}
	return oid, v, nil
}

// Open returns a typed writable view of the object's micro-buffer,
// marking the whole struct as modified (the common whole-node update; use
// tx.AddRange for finer ranges).
func Open[T any](tx *Tx, oid OID) (*T, error) {
	data, err := tx.AddRange(oid, 0, SizeOf[T]())
	if err != nil {
		return nil, err
	}
	return View[T](data)
}

// Get returns a typed read-only view of the object (pgl_get semantics: no
// checksum verification under VerifyDefault).
func Get[T any](tx *Tx, oid OID) (*T, error) {
	data, err := tx.Get(oid)
	if err != nil {
		return nil, err
	}
	return View[T](data)
}

// GetFromPool is Get without a transaction.
func GetFromPool[T any](p *Pool, oid OID) (*T, error) {
	data, err := p.Get(oid)
	if err != nil {
		return nil, err
	}
	return View[T](data)
}

// Root returns the pool's root object as type T, allocating it on first
// use.
func Root[T any](p *Pool, typ uint32) (OID, error) {
	return p.RootOID(SizeOf[T](), typ)
}
