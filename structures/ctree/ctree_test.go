package ctree

import (
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestNodeSizeMatchesPaper(t *testing.T) {
	// Table 3: ctree object size 56 B.
	if s := unsafe.Sizeof(node{}); s != 56 {
		t.Fatalf("node size %d, want 56", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

func TestMsbDiff(t *testing.T) {
	cases := []struct {
		a, b uint64
		want uint32
	}{
		{0, 1, 0},
		{0, 1 << 63, 63},
		{0b1010, 0b1000, 1},
		{5, 4, 0},
	}
	for _, c := range cases {
		if got := msbDiff(c.a, c.b); got != c.want {
			t.Fatalf("msbDiff(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLenTracksCount(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := tr.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Len(); n != 20 {
		t.Fatalf("len %d", n)
	}
	for i := uint64(0); i < 10; i++ {
		if _, err := tr.Remove(i); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := tr.Len(); n != 10 {
		t.Fatalf("len %d after removals", n)
	}
}

func TestRangeOrdered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, true)
}
