// Package ctree implements a persistent crit-bit tree over uint64 keys,
// the first of the six PMDK data-structure benchmarks the paper evaluates
// (§4.5). Every node is a 56-byte Pangolin object (Table 3).
//
// A crit-bit tree stores keys at leaves; each internal node records the
// most significant bit position at which its two subtrees differ.
// Lookups walk bit decisions without comparisons; inserts add exactly one
// leaf and one internal node; removals collapse one internal node.
package ctree

import (
	"github.com/pangolin-go/pangolin"
)

// typeNode is the object type id for tree nodes.
const typeNode = 0x63 // 'c'

// node is the persistent node layout: 56 bytes, matching the paper's
// ctree object size. Internal nodes use Child and Diff; leaves hold
// Key/Value and Diff == leafDiff.
type node struct {
	Child [2]pangolin.OID // 32 B
	Key   uint64
	Value uint64
	Diff  uint32 // critical bit index (63 = MSB); leafDiff for leaves
	_     uint32
}

const leafDiff = ^uint32(0)

// anchor is the persistent root record.
type anchor struct {
	Root  pangolin.OID
	Count uint64
}

// Tree is a handle to a persistent crit-bit tree.
type Tree struct {
	p      *pangolin.Pool
	anchor pangolin.OID
}

// New allocates a fresh tree in the pool.
func New(p *pangolin.Pool) (*Tree, error) {
	var oid pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		oid, _, err = pangolin.Alloc[anchor](tx, typeNode)
		return err
	})
	if err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: oid}, nil
}

// Attach reconnects to a tree created earlier.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*Tree, error) {
	if _, err := p.ObjectSize(anchorOID); err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: anchorOID}, nil
}

// Anchor returns the tree's persistent anchor OID.
func (t *Tree) Anchor() pangolin.OID { return t.anchor }

// bit reports bit i of k (i = 63 is the most significant).
func bit(k uint64, i uint32) int { return int(k>>i) & 1 }

// msbDiff returns the index of the most significant differing bit.
func msbDiff(a, b uint64) uint32 {
	x := a ^ b
	i := uint32(63)
	for x>>i == 0 {
		i--
	}
	return i
}

// Lookup finds k without micro-buffering (direct reads). It is a pure
// read (no pool writes, no handle state), honoring the kv.Map
// concurrent-read contract: on a ReadView instance it may run
// concurrently with other Lookups, gated against commits by the caller.
func (t *Tree) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for !cur.IsNil() {
		n, err := pangolin.GetFromPool[node](t.p, cur)
		if err != nil {
			return 0, false, err
		}
		if n.Diff == leafDiff {
			if n.Key == k {
				return n.Value, true, nil
			}
			return 0, false, nil
		}
		cur = n.Child[bit(k, n.Diff)]
	}
	return 0, false, nil
}

// LookupTx is Lookup inside the caller's transaction: reads come from the
// transaction's micro-buffers when it has nodes open, so the caller's own
// uncommitted inserts and removes are visible.
func (t *Tree) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for !cur.IsNil() {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return 0, false, err
		}
		if n.Diff == leafDiff {
			if n.Key == k {
				return n.Value, true, nil
			}
			return 0, false, nil
		}
		cur = n.Child[bit(k, n.Diff)]
	}
	return 0, false, nil
}

// Insert adds or updates k in one transaction.
func (t *Tree) Insert(k, v uint64) error {
	return t.p.Run(func(tx *pangolin.Tx) error { return t.InsertTx(tx, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (t *Tree) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	a, err := pangolin.Open[anchor](tx, t.anchor)
	if err != nil {
		return err
	}
	if a.Root.IsNil() {
		leafOID, leaf, err := pangolin.Alloc[node](tx, typeNode)
		if err != nil {
			return err
		}
		*leaf = node{Key: k, Value: v, Diff: leafDiff}
		a.Root = leafOID
		a.Count++
		return nil
	}
	// Find the leaf the key would reach.
	cur := a.Root
	for {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return err
		}
		if n.Diff == leafDiff {
			break
		}
		cur = n.Child[bit(k, n.Diff)]
	}
	leaf, err := pangolin.Get[node](tx, cur)
	if err != nil {
		return err
	}
	if leaf.Key == k {
		// In-place value update.
		w, err := pangolin.Open[node](tx, cur)
		if err != nil {
			return err
		}
		w.Value = v
		return nil
	}
	d := msbDiff(leaf.Key, k)
	// Walk again to the insertion point: the first node whose Diff
	// is below d (or a leaf).
	parent := pangolin.NilOID
	parentDir := 0
	cur = a.Root
	for {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return err
		}
		if n.Diff == leafDiff || n.Diff < d {
			break
		}
		parent = cur
		parentDir = bit(k, n.Diff)
		cur = n.Child[parentDir]
	}
	// New leaf and new internal node above cur.
	leafOID, newLeaf, err := pangolin.Alloc[node](tx, typeNode)
	if err != nil {
		return err
	}
	*newLeaf = node{Key: k, Value: v, Diff: leafDiff}
	innerOID, inner, err := pangolin.Alloc[node](tx, typeNode)
	if err != nil {
		return err
	}
	inner.Diff = d
	inner.Child[bit(k, d)] = leafOID
	inner.Child[1-bit(k, d)] = cur
	if parent.IsNil() {
		a.Root = innerOID
	} else {
		pn, err := pangolin.Open[node](tx, parent)
		if err != nil {
			return err
		}
		pn.Child[parentDir] = innerOID
	}
	a.Count++
	return nil
}

// Remove deletes k, reporting whether it was present.
func (t *Tree) Remove(k uint64) (bool, error) {
	found := false
	err := t.p.Run(func(tx *pangolin.Tx) error {
		var err error
		found, err = t.RemoveTx(tx, k)
		return err
	})
	return found, err
}

// RemoveTx deletes k inside the caller's transaction.
func (t *Tree) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	a, err := pangolin.Open[anchor](tx, t.anchor)
	if err != nil {
		return false, err
	}
	if a.Root.IsNil() {
		return false, nil
	}
	// Track leaf, its parent, and grandparent.
	var gparent, parent pangolin.OID
	gdir, pdir := 0, 0
	cur := a.Root
	for {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return false, err
		}
		if n.Diff == leafDiff {
			if n.Key != k {
				return false, nil
			}
			break
		}
		gparent, gdir = parent, pdir
		parent, pdir = cur, bit(k, n.Diff)
		cur = n.Child[pdir]
	}
	if parent.IsNil() {
		// The leaf was the root.
		a.Root = pangolin.NilOID
		a.Count--
		return true, tx.Free(cur)
	}
	pn, err := pangolin.Get[node](tx, parent)
	if err != nil {
		return false, err
	}
	sibling := pn.Child[1-pdir]
	if gparent.IsNil() {
		a.Root = sibling
	} else {
		gn, err := pangolin.Open[node](tx, gparent)
		if err != nil {
			return false, err
		}
		gn.Child[gdir] = sibling
	}
	a.Count--
	if err := tx.Free(cur); err != nil {
		return true, err
	}
	return true, tx.Free(parent)
}

// Len returns the number of keys.
func (t *Tree) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// Range calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false. Reads are direct (pgl_get); do not
// mutate the tree during iteration.
func (t *Tree) Range(fn func(k, v uint64) bool) error {
	return t.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in ascending key
// order, stopping early if fn returns false. Internal crit-bit nodes do
// not record their subtree's common prefix, so the walk cannot prune
// below lo without extra leaf reads; it skips leaves under lo and stops
// at the first leaf beyond hi (in-order, so nothing after it can
// qualify). It follows the kv.Map iteration contract: a mid-scan read
// fault aborts the walk and returns its error.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return err
	}
	_, err = t.scanWalk(a.Root, lo, hi, fn)
	return err
}

// scanWalk visits the subtree in order; crit-bit children are ordered by
// the critical bit, so child 0 precedes child 1 in key order.
func (t *Tree) scanWalk(oid pangolin.OID, lo, hi uint64, fn func(k, v uint64) bool) (bool, error) {
	if oid.IsNil() {
		return true, nil
	}
	n, err := pangolin.GetFromPool[node](t.p, oid)
	if err != nil {
		return false, err
	}
	if n.Diff == leafDiff {
		if n.Key < lo {
			return true, nil
		}
		if n.Key > hi {
			return false, nil
		}
		return fn(n.Key, n.Value), nil
	}
	for _, c := range n.Child {
		cont, err := t.scanWalk(c, lo, hi, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
