package kvtest

import (
	"sort"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// Ranger is implemented by structures offering iteration.
type Ranger interface {
	Range(fn func(k, v uint64) bool) error
}

// RunRange verifies a structure's Range iterator: full coverage, early
// stop, and (when ordered is set) ascending key order.
func RunRange(t *testing.T, h Harness, ordered bool) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.(Ranger)
	if !ok {
		t.Fatal("structure does not implement Range")
	}
	want := map[uint64]uint64{}
	for _, k := range []uint64{9, 2, 71, 33, 5, 100, 0, 64} {
		if err := m.Insert(k, k*3); err != nil {
			t.Fatal(err)
		}
		want[k] = k * 3
	}
	var keys []uint64
	got := map[uint64]uint64{}
	if err := r.Range(func(k, v uint64) bool {
		keys = append(keys, k)
		got[k] = v
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("ranged %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d: got %d want %d", k, got[k], v)
		}
	}
	if ordered && !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("keys not ascending: %v", keys)
	}
	// Early stop.
	n := 0
	if err := r.Range(func(k, v uint64) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty structure ranges nothing.
	m2, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.(Ranger).Range(func(k, v uint64) bool {
		t.Fatal("empty structure yielded a pair")
		return false
	}); err != nil {
		t.Fatal(err)
	}
	_ = kv.Map(m) // keep the interface linkage explicit
}
