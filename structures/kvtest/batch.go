package kvtest

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// RunBatch runs the group-commit conformance suite over the Map's
// transaction-scoped operations (InsertTx/RemoveTx/LookupTx): mixed
// single-op and batched workloads against a volatile model,
// read-your-writes inside one transaction, all-or-nothing aborts, and
// crash recovery from an image taken in the middle of an uncommitted
// batch.
func RunBatch(t *testing.T, h Harness) {
	t.Run("BatchModel", func(t *testing.T) { testBatchModel(t, h, pangolin.ModePangolinMLPC, 11) })
	t.Run("BatchModelPmemobj", func(t *testing.T) { testBatchModel(t, h, pangolin.ModePmemobj, 12) })
	t.Run("BatchReadYourWrites", func(t *testing.T) { testBatchRYW(t, h) })
	t.Run("BatchAbortAtomicity", func(t *testing.T) { testBatchAbort(t, h, pangolin.ModePangolinMLPC) })
	t.Run("BatchAbortAtomicityPmemobj", func(t *testing.T) { testBatchAbort(t, h, pangolin.ModePmemobj) })
	t.Run("BatchCrashRecovery", func(t *testing.T) { testBatchCrash(t, h) })
}

// batchOp is one model-mirrored operation inside a batch.
type batchOp struct {
	kind uint8 // 0 insert, 1 remove, 2 lookup
	k, v uint64
}

// applyBatch runs ops in one transaction, checking RemoveTx/LookupTx
// results against the expected intermediate model state.
func applyBatch(t *testing.T, m kv.Map, p *pangolin.Pool, model map[uint64]uint64, ops []batchOp) {
	t.Helper()
	// The batch must observe its own earlier operations, so mirror them
	// into a scratch model as the transaction proceeds.
	scratch := make(map[uint64]uint64, len(model))
	for k, v := range model {
		scratch[k] = v
	}
	err := p.Run(func(tx *pangolin.Tx) error {
		for i, op := range ops {
			switch op.kind {
			case 0:
				if err := m.InsertTx(tx, op.k, op.v); err != nil {
					return fmt.Errorf("batch op %d InsertTx(%d): %w", i, op.k, err)
				}
				scratch[op.k] = op.v
			case 1:
				ok, err := m.RemoveTx(tx, op.k)
				if err != nil {
					return fmt.Errorf("batch op %d RemoveTx(%d): %w", i, op.k, err)
				}
				if _, want := scratch[op.k]; ok != want {
					return fmt.Errorf("batch op %d RemoveTx(%d) = %v, want %v", i, op.k, ok, want)
				}
				delete(scratch, op.k)
			case 2:
				v, ok, err := m.LookupTx(tx, op.k)
				if err != nil {
					return fmt.Errorf("batch op %d LookupTx(%d): %w", i, op.k, err)
				}
				wantV, want := scratch[op.k]
				if ok != want || (ok && v != wantV) {
					return fmt.Errorf("batch op %d LookupTx(%d) = (%d,%v), want (%d,%v)",
						i, op.k, v, ok, wantV, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range scratch {
		model[k] = v
	}
	for k := range model {
		if _, ok := scratch[k]; !ok {
			delete(model, k)
		}
	}
}

// testBatchModel interleaves single operations with multi-op transactions,
// mirroring everything against a volatile map.
func testBatchModel(t *testing.T, h Harness, mode pangolin.Mode, seed int64) {
	p := newPool(t, mode)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]uint64)
	const rounds = 250
	const keySpace = 200
	for i := 0; i < rounds; i++ {
		if rng.Intn(2) == 0 {
			// One batch of 2–8 ops in a single transaction.
			n := 2 + rng.Intn(7)
			ops := make([]batchOp, n)
			for j := range ops {
				ops[j] = batchOp{
					kind: uint8(rng.Intn(3)),
					k:    uint64(rng.Intn(keySpace)),
					v:    rng.Uint64(),
				}
			}
			applyBatch(t, m, p, model, ops)
			continue
		}
		// A single op through the non-Tx API: both paths must agree.
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(3) {
		case 0:
			v := rng.Uint64()
			if err := m.Insert(k, v); err != nil {
				t.Fatalf("round %d insert %d: %v", i, k, err)
			}
			model[k] = v
		case 1:
			ok, err := m.Remove(k)
			if err != nil {
				t.Fatalf("round %d remove %d: %v", i, k, err)
			}
			if _, want := model[k]; ok != want {
				t.Fatalf("round %d remove %d = %v, want %v", i, k, ok, want)
			}
			delete(model, k)
		case 2:
			v, ok, err := m.Lookup(k)
			if err != nil {
				t.Fatalf("round %d lookup %d: %v", i, k, err)
			}
			wantV, want := model[k]
			if ok != want || (ok && v != wantV) {
				t.Fatalf("round %d lookup %d = (%d,%v), want (%d,%v)", i, k, v, ok, wantV, want)
			}
		}
	}
	for k := uint64(0); k < keySpace; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("final lookup %d = (%d,%v), model (%d,%v)", k, v, ok, wantV, want)
		}
	}
}

// testBatchRYW checks that one transaction observes its own writes in
// sequence: insert → lookup → remove → lookup → reinsert.
func testBatchRYW(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(1, 100); err != nil {
		t.Fatal(err)
	}
	err = p.Run(func(tx *pangolin.Tx) error {
		if v, ok, err := m.LookupTx(tx, 1); err != nil || !ok || v != 100 {
			return fmt.Errorf("pre-existing key inside tx: (%d,%v,%v)", v, ok, err)
		}
		if err := m.InsertTx(tx, 2, 200); err != nil {
			return err
		}
		if v, ok, err := m.LookupTx(tx, 2); err != nil || !ok || v != 200 {
			return fmt.Errorf("own insert invisible: (%d,%v,%v)", v, ok, err)
		}
		if ok, err := m.RemoveTx(tx, 2); err != nil || !ok {
			return fmt.Errorf("own insert not removable: (%v,%v)", ok, err)
		}
		if _, ok, err := m.LookupTx(tx, 2); err != nil || ok {
			return fmt.Errorf("own remove invisible: (%v,%v)", ok, err)
		}
		if ok, err := m.RemoveTx(tx, 1); err != nil || !ok {
			return fmt.Errorf("pre-existing key not removable: (%v,%v)", ok, err)
		}
		return m.InsertTx(tx, 3, 300)
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Lookup(1); ok {
		t.Fatal("key 1 survived its in-batch remove")
	}
	if _, ok, _ := m.Lookup(2); ok {
		t.Fatal("key 2 (inserted and removed in one batch) present after commit")
	}
	if v, ok, _ := m.Lookup(3); !ok || v != 300 {
		t.Fatal("key 3 lost")
	}
}

// testBatchAbort errors out of a transaction after several operations; the
// structure must be exactly as before the batch.
func testBatchAbort(t *testing.T, h Harness, mode pangolin.Mode) {
	p := newPool(t, mode)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]uint64)
	for k := uint64(0); k < 40; k++ {
		if err := m.Insert(k, k*11); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 11
	}
	boom := fmt.Errorf("boom")
	err = p.Run(func(tx *pangolin.Tx) error {
		for k := uint64(0); k < 10; k++ {
			if err := m.InsertTx(tx, 100+k, k); err != nil {
				return err
			}
		}
		if ok, err := m.RemoveTx(tx, 5); err != nil || !ok {
			return fmt.Errorf("RemoveTx(5) in doomed batch: (%v,%v)", ok, err)
		}
		if err := m.InsertTx(tx, 7, 999); err != nil {
			return err
		}
		return boom
	})
	if err != boom {
		t.Fatalf("doomed batch returned %v, want the injected error", err)
	}
	for k := uint64(0); k < 150; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %d after abort: %v", k, err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("key %d after abort = (%d,%v), want (%d,%v): aborted batch leaked",
				k, v, ok, wantV, want)
		}
	}
}

// testBatchCrash applies committed batches, then takes a crash image while
// a further batch is half-applied but uncommitted. Reopening the image
// must show every committed batch in full and nothing of the in-flight
// one — batches are atomic under power failure.
func testBatchCrash(t *testing.T, h Harness) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC, Geometry: testGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(31))
	for batch := 0; batch < 10; batch++ {
		ops := make([]batchOp, 8)
		for j := range ops {
			kind := uint8(rng.Intn(2)) // inserts and removes only
			ops[j] = batchOp{kind: kind, k: uint64(rng.Intn(100)), v: rng.Uint64()}
		}
		applyBatch(t, m, p, model, ops)
	}

	// Mid-batch crash: open a transaction, apply half its operations,
	// snapshot the device as a power failure would leave it, then let the
	// batch commit on the live pool.
	var crashed *pangolin.Device
	err = p.Run(func(tx *pangolin.Tx) error {
		for k := uint64(200); k < 204; k++ {
			if err := m.InsertTx(tx, k, k); err != nil {
				return err
			}
		}
		if _, err := m.RemoveTx(tx, 0); err != nil {
			return err
		}
		crashed = p.Device().CrashCopy(pangolin.CrashEvictRandom, 97)
		for k := uint64(204); k < 208; k++ {
			if err := m.InsertTx(tx, k, k); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	anchor := m.Anchor()
	p.Close()

	p2, err := pangolin.OpenDevice(crashed, pangolin.Config{Mode: pangolin.ModePangolinMLPC}, nil)
	if err != nil {
		t.Fatalf("recovery from mid-batch crash image: %v", err)
	}
	defer p2.Close()
	m2, err := h.Attach(p2, anchor)
	if err != nil {
		t.Fatal(err)
	}
	// Committed batches are all there…
	for k, want := range model {
		v, ok, err := m2.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %d after crash recovery: %v", k, err)
		}
		if !ok || v != want {
			t.Fatalf("committed key %d = (%d,%v), want (%d,true)", k, v, ok, want)
		}
	}
	// …and the uncommitted batch left no trace.
	for k := uint64(200); k < 208; k++ {
		if _, ok, _ := m2.Lookup(k); ok {
			t.Fatalf("uncommitted batch key %d visible after crash", k)
		}
	}
	if rep, err := p2.Scrub(); err != nil || rep.Unrecovered != 0 {
		t.Fatalf("scrub after mid-batch crash: %+v, %v", rep, err)
	}
}
