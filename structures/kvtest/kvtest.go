// Package kvtest is the shared conformance suite for the persistent
// key-value structures: basic semantics, model-based random testing
// against a volatile map, crash-recovery equivalence, and fault-injection
// survival. Each structure's tests invoke RunAll with its harness.
package kvtest

import (
	"math/rand"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// Harness adapts one data structure to the suite.
type Harness struct {
	// Make creates a fresh structure in the pool.
	Make func(p *pangolin.Pool) (kv.Map, error)
	// Attach reconnects to an existing structure after reopen.
	Attach func(p *pangolin.Pool, anchor pangolin.OID) (kv.Map, error)
	// Ordered declares that Scan visits keys ascending (registry's
	// Ordered flag); the scan suites assert order only when set.
	Ordered bool
}

// testGeometry sizes pools for the large-object structures (rtree nodes
// are 4 KB; the default two-zone pool is too small).
func testGeometry() pangolin.Geometry {
	geo := pangolin.DefaultGeometry()
	geo.NumZones = 12
	return geo
}

func newPool(t *testing.T, mode pangolin.Mode) *pangolin.Pool {
	t.Helper()
	p, err := pangolin.Create(pangolin.Config{Mode: mode, Geometry: testGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// RunAll runs the full conformance suite.
func RunAll(t *testing.T, h Harness) {
	t.Run("Basic", func(t *testing.T) { testBasic(t, h) })
	t.Run("UpdateInPlace", func(t *testing.T) { testUpdate(t, h) })
	t.Run("RemoveSemantics", func(t *testing.T) { testRemove(t, h) })
	t.Run("AscendingKeys", func(t *testing.T) { testSequence(t, h, ascending(400)) })
	t.Run("DescendingKeys", func(t *testing.T) { testSequence(t, h, descending(400)) })
	t.Run("Model", func(t *testing.T) { testModel(t, h, pangolin.ModePangolinMLPC, 1) })
	t.Run("ModelPmemobj", func(t *testing.T) { testModel(t, h, pangolin.ModePmemobj, 2) })
	t.Run("ReopenEquivalence", func(t *testing.T) { testReopen(t, h) })
	t.Run("SurvivesMediaError", func(t *testing.T) { testMediaError(t, h) })
	t.Run("SurvivesScribbleViaScrub", func(t *testing.T) { testScribble(t, h) })
}

func testBasic(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Lookup(1); ok {
		t.Fatal("empty map contains key")
	}
	for k := uint64(1); k <= 50; k++ {
		if err := m.Insert(k, k*100); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for k := uint64(1); k <= 50; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != k*100 {
			t.Fatalf("lookup %d = (%d,%v)", k, v, ok)
		}
	}
	if _, ok, _ := m.Lookup(9999); ok {
		t.Fatal("phantom key present")
	}
}

func testUpdate(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(7, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(7, 2); err != nil {
		t.Fatal(err)
	}
	v, ok, err := m.Lookup(7)
	if err != nil || !ok || v != 2 {
		t.Fatalf("after update: (%d,%v,%v)", v, ok, err)
	}
}

func testRemove(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 30; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Remove a missing key.
	if ok, err := m.Remove(1000); err != nil || ok {
		t.Fatalf("remove missing = (%v,%v)", ok, err)
	}
	// Remove every other key.
	for k := uint64(0); k < 30; k += 2 {
		ok, err := m.Remove(k)
		if err != nil || !ok {
			t.Fatalf("remove %d = (%v,%v)", k, ok, err)
		}
	}
	for k := uint64(0); k < 30; k++ {
		_, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if want := k%2 == 1; ok != want {
			t.Fatalf("key %d present=%v want %v", k, ok, want)
		}
	}
	// Double remove.
	if ok, _ := m.Remove(0); ok {
		t.Fatal("double remove succeeded")
	}
	// Remove all remaining; map must empty cleanly.
	for k := uint64(1); k < 30; k += 2 {
		if ok, err := m.Remove(k); err != nil || !ok {
			t.Fatalf("drain remove %d: (%v,%v)", k, ok, err)
		}
	}
	if _, ok, _ := m.Lookup(1); ok {
		t.Fatal("map not empty after drain")
	}
	// And refill after emptying.
	if err := m.Insert(5, 55); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.Lookup(5); !ok || v != 55 {
		t.Fatal("refill after drain failed")
	}
}

func ascending(n int) []uint64 {
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = uint64(i)
	}
	return ks
}

func descending(n int) []uint64 {
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = uint64(n - i)
	}
	return ks
}

func testSequence(t *testing.T, h Harness, keys []uint64) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if err := m.Insert(k, k^0xFFFF); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	for _, k := range keys {
		v, ok, err := m.Lookup(k)
		if err != nil || !ok || v != k^0xFFFF {
			t.Fatalf("lookup %d = (%d,%v,%v)", k, v, ok, err)
		}
	}
}

// testModel runs random operations mirrored against a volatile map; the
// persistent structure must agree at every step.
func testModel(t *testing.T, h Harness, mode pangolin.Mode, seed int64) {
	p := newPool(t, mode)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	model := make(map[uint64]uint64)
	const ops = 1500
	const keySpace = 300
	for i := 0; i < ops; i++ {
		k := uint64(rng.Intn(keySpace))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5: // insert
			v := rng.Uint64()
			if err := m.Insert(k, v); err != nil {
				t.Fatalf("op %d insert %d: %v", i, k, err)
			}
			model[k] = v
		case 6, 7: // remove
			ok, err := m.Remove(k)
			if err != nil {
				t.Fatalf("op %d remove %d: %v", i, k, err)
			}
			if _, want := model[k]; ok != want {
				t.Fatalf("op %d remove %d = %v, model %v", i, k, ok, want)
			}
			delete(model, k)
		default: // lookup
			v, ok, err := m.Lookup(k)
			if err != nil {
				t.Fatalf("op %d lookup %d: %v", i, k, err)
			}
			wantV, want := model[k]
			if ok != want || (ok && v != wantV) {
				t.Fatalf("op %d lookup %d = (%d,%v), model (%d,%v)", i, k, v, ok, wantV, want)
			}
		}
	}
	// Final sweep.
	for k := uint64(0); k < keySpace; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("final lookup %d = (%d,%v), model (%d,%v)", k, v, ok, wantV, want)
		}
	}
}

// testReopen crashes the pool and verifies the structure's contents are
// intact through recovery and Attach.
func testReopen(t *testing.T, h Harness) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC, Geometry: testGeometry()})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 300; i++ {
		k := uint64(rng.Intn(150))
		if rng.Intn(4) == 0 {
			if _, err := m.Remove(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := rng.Uint64()
			if err := m.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	anchor := m.Anchor()
	crashed := p.Device().CrashCopy(pangolin.CrashStrict, 99)
	p.Close()
	p2, err := pangolin.OpenDevice(crashed, pangolin.Config{Mode: pangolin.ModePangolinMLPC}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	m2, err := h.Attach(p2, anchor)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 150; k++ {
		v, ok, err := m2.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %d after reopen: %v", k, err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("key %d after reopen: (%d,%v), model (%d,%v)", k, v, ok, wantV, want)
		}
	}
}

// testMediaError poisons a page under a live node; the structure must keep
// answering correctly through online recovery.
func testMediaError(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		if err := m.Insert(k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	// Poison the page holding the anchor's neighbourhood: some node
	// lives there.
	p.InjectMediaError(m.Anchor().Off)
	for k := uint64(0); k < 100; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %d during media error: %v", k, err)
		}
		if !ok || v != k+1000 {
			t.Fatalf("lookup %d = (%d,%v) after recovery", k, v, ok)
		}
	}
}

// testScribble corrupts a node via a simulated software bug and verifies a
// scrub pass restores the structure.
func testScribble(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 64; k++ {
		if err := m.Insert(k, k*7); err != nil {
			t.Fatal(err)
		}
	}
	p.InjectScribble(m.Anchor().Off, 8, 5)
	if _, err := p.Scrub(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 64; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != k*7 {
			t.Fatalf("lookup %d = (%d,%v) after scrub", k, v, ok)
		}
	}
}
