package kvtest

import (
	"sort"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// This file is the structure-level analog of internal/core's commit
// crash sweeps: instead of sweeping a synthetic overwrite transaction,
// it sweeps every persistence point (every Flush and Fence the simulated
// NVMM sees) of real structure operations — Insert of a new key, update
// in place, Remove, and a multi-op batch commit — crashes there via the
// device persist hook, reopens a random-eviction crash image, and
// verifies the recovered structure against a model. The invariant is the
// paper's atomicity guarantee lifted to the kv.Map level: after recovery
// the structure holds exactly the pre-image or exactly the post-image of
// the interrupted operation — never a mix, never a torn node — and a
// scrub pass finds nothing unrecoverable.

// crashSignal aborts execution at a chosen persistence point.
type crashSignal struct{}

// runUntilCrash executes fn, crashing (via the device persist hook) at
// the crashAt-th persistence operation. It reports whether the hook
// fired and whether fn completed.
func runUntilCrash(dev *pangolin.Device, crashAt int, fn func()) (crashed, completed bool) {
	count := 0
	dev.SetPersistHook(func() {
		count++
		if count == crashAt {
			panic(crashSignal{})
		}
	})
	defer dev.SetPersistHook(nil)
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		fn()
		completed = true
	}()
	return crashed, completed
}

// crashPrefill is the committed base state every sweep starts from.
const crashPrefill = 16

func crashPreModel() map[uint64]uint64 {
	m := make(map[uint64]uint64, crashPrefill)
	for k := uint64(0); k < crashPrefill; k++ {
		m[k] = k*7 + 1
	}
	return m
}

// crashCase is one swept operation: run mutates the live structure,
// post applies the same mutation to a model copy.
type crashCase struct {
	name string
	run  func(p *pangolin.Pool, m kv.Map) error
	post func(model map[uint64]uint64)
}

func crashCases() []crashCase {
	return []crashCase{
		{"Insert",
			func(p *pangolin.Pool, m kv.Map) error { return m.Insert(100, 4242) },
			func(mod map[uint64]uint64) { mod[100] = 4242 }},
		{"Update",
			func(p *pangolin.Pool, m kv.Map) error { return m.Insert(3, 9999) },
			func(mod map[uint64]uint64) { mod[3] = 9999 }},
		{"Remove",
			func(p *pangolin.Pool, m kv.Map) error { _, err := m.Remove(5); return err },
			func(mod map[uint64]uint64) { delete(mod, 5) }},
		// A group-committed batch: inserts, a remove, and an update in
		// one transaction, the shape the serving layer's group commit
		// produces. Atomicity must hold for the whole group.
		{"BatchCommit",
			func(p *pangolin.Pool, m kv.Map) error {
				return p.Run(func(tx *pangolin.Tx) error {
					if err := m.InsertTx(tx, 200, 1); err != nil {
						return err
					}
					if err := m.InsertTx(tx, 201, 2); err != nil {
						return err
					}
					if _, err := m.RemoveTx(tx, 7); err != nil {
						return err
					}
					return m.InsertTx(tx, 3, 555)
				})
			},
			func(mod map[uint64]uint64) {
				mod[200], mod[201] = 1, 2
				delete(mod, 7)
				mod[3] = 555
			}},
	}
}

// RunCrashSweep is the exhaustive crash-point sweep: for each operation
// kind it crashes at every persistence point (sampled with a stride in
// -short mode; the nightly workflow visits every point), reopens
// random-eviction crash images, and verifies pre-/post-image atomicity
// plus scrub cleanliness. Run it for every registered structure — the
// registry-wide driver lives in structures/kv's tests.
func RunCrashSweep(t *testing.T, h Harness) {
	for _, c := range crashCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			sweepCase(t, h, c)
		})
	}
}

func sweepCase(t *testing.T, h Harness, c crashCase) {
	pre := crashPreModel()
	post := crashPreModel()
	c.post(post)
	keys := unionKeys(pre, post)

	stride, seeds := 1, int64(2)
	if testing.Short() {
		// PR CI samples the sweep; nightly visits every crash point.
		stride, seeds = 5, 1
	}
	cfg := pangolin.Config{Mode: pangolin.ModePangolinMLPC, Geometry: testGeometry()}
	for crashAt := 1; ; crashAt += stride {
		p, err := pangolin.Create(cfg)
		if err != nil {
			t.Fatal(err)
		}
		m, err := h.Make(p)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic prefill (sorted keys, one transaction) so the
		// swept operation sees the same structure shape — and the same
		// persist-point sequence — at every crashAt.
		if err := p.Run(func(tx *pangolin.Tx) error {
			for k := uint64(0); k < crashPrefill; k++ {
				if err := m.InsertTx(tx, k, k*7+1); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		anchor := m.Anchor()

		var opErr error
		crashed, completed := runUntilCrash(p.Device(), crashAt, func() {
			opErr = c.run(p, m)
		})
		if completed && opErr != nil {
			t.Fatalf("crashAt=%d: op failed without crashing: %v", crashAt, opErr)
		}
		if !crashed && !completed {
			t.Fatalf("crashAt=%d: neither crashed nor completed", crashAt)
		}

		for seed := int64(0); seed < seeds; seed++ {
			img := p.Device().CrashCopy(pangolin.CrashEvictRandom, int64(crashAt)*31+seed)
			p2, err := pangolin.OpenDevice(img, pangolin.Config{Mode: pangolin.ModePangolinMLPC}, nil)
			if err != nil {
				t.Fatalf("crashAt=%d seed=%d: reopen: %v", crashAt, seed, err)
			}
			m2, err := h.Attach(p2, anchor)
			if err != nil {
				t.Fatalf("crashAt=%d seed=%d: attach: %v", crashAt, seed, err)
			}
			got := readState(t, m2, keys)
			switch {
			case completed && !modelsEqual(got, post):
				t.Fatalf("crashAt=%d seed=%d: committed op lost or mangled:\n got %v\nwant %v",
					crashAt, seed, got, post)
			case !completed && !modelsEqual(got, pre) && !modelsEqual(got, post):
				t.Fatalf("crashAt=%d seed=%d: recovered state is neither pre- nor post-image:\n got %v\n pre %v\npost %v",
					crashAt, seed, got, pre, post)
			}
			if rep, err := p2.Scrub(); err != nil || rep.Unrecovered != 0 {
				t.Fatalf("crashAt=%d seed=%d: scrub after recovery: %+v, %v", crashAt, seed, rep, err)
			}
			p2.Close()
		}
		p.Close()
		if !crashed {
			return // swept past the operation's last persistence point
		}
		if crashAt > 20000 {
			t.Fatal("sweep did not terminate")
		}
	}
}

// unionKeys returns the sorted union of both models' key sets.
func unionKeys(a, b map[uint64]uint64) []uint64 {
	set := make(map[uint64]struct{}, len(a)+len(b))
	for k := range a {
		set[k] = struct{}{}
	}
	for k := range b {
		set[k] = struct{}{}
	}
	keys := make([]uint64, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// readState reads every key in keys from the structure into a model map.
func readState(t *testing.T, m kv.Map, keys []uint64) map[uint64]uint64 {
	t.Helper()
	got := make(map[uint64]uint64)
	for _, k := range keys {
		v, ok, err := m.Lookup(k)
		if err != nil {
			t.Fatalf("lookup %d after recovery: %v", k, err)
		}
		if ok {
			got[k] = v
		}
	}
	return got
}

func modelsEqual(a, b map[uint64]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}
