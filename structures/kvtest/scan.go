package kvtest

import (
	"math/rand"
	"testing"

	"github.com/pangolin-go/pangolin"
)

// RunScan enforces the kv.Map iteration contract for one structure's
// Scan: inclusive bounds, completeness against a model, early stop,
// ascending order when the structure is ordered, agreement with the
// unbounded Range, and — on a ReadView instance — typed error
// propagation on a mid-scan fault instead of a partial iteration that
// looks complete.
func RunScan(t *testing.T, h Harness, ordered bool) {
	t.Run("BoundsAndOrder", func(t *testing.T) { testScanBounds(t, h, ordered) })
	t.Run("RandomRangesVsModel", func(t *testing.T) { testScanModel(t, h, ordered) })
	t.Run("EarlyStop", func(t *testing.T) { testScanEarlyStop(t, h) })
	t.Run("EmptyAndDegenerate", func(t *testing.T) { testScanDegenerate(t, h) })
	t.Run("ViewFaultSurfaces", func(t *testing.T) { testScanViewFault(t, h) })
}

// collectScan gathers one Scan's pairs, asserting ascending keys when
// ordered.
func collectScan(t *testing.T, m interface {
	Scan(lo, hi uint64, fn func(k, v uint64) bool) error
}, lo, hi uint64, ordered bool) map[uint64]uint64 {
	t.Helper()
	got := map[uint64]uint64{}
	last, first := uint64(0), true
	if err := m.Scan(lo, hi, func(k, v uint64) bool {
		if k < lo || k > hi {
			t.Fatalf("scan [%d,%d] yielded out-of-bounds key %d", lo, hi, k)
		}
		if _, dup := got[k]; dup {
			t.Fatalf("scan [%d,%d] yielded key %d twice", lo, hi, k)
		}
		if ordered && !first && k <= last {
			t.Fatalf("scan [%d,%d] broke ascending order: %d after %d", lo, hi, k, last)
		}
		got[k] = v
		last, first = k, false
		return true
	}); err != nil {
		t.Fatalf("scan [%d,%d]: %v", lo, hi, err)
	}
	return got
}

func testScanBounds(t *testing.T, h Harness, ordered bool) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	keys := []uint64{0, 1, 7, 19, 20, 21, 55, 100, 255, 256, 1 << 40, ^uint64(0) - 1, ^uint64(0)}
	for _, k := range keys {
		if err := m.Insert(k, k^0xABCD); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	check := func(lo, hi uint64) {
		t.Helper()
		got := collectScan(t, m, lo, hi, ordered)
		want := 0
		for _, k := range keys {
			if k >= lo && k <= hi {
				want++
				if v, ok := got[k]; !ok || v != k^0xABCD {
					t.Fatalf("scan [%d,%d]: key %d = (%d,%v), want %d", lo, hi, k, v, ok, k^0xABCD)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("scan [%d,%d] returned %d pairs, want %d", lo, hi, len(got), want)
		}
	}
	// Inclusive at both ends, interior ranges, single-key ranges, and the
	// extremes of the key space.
	check(0, ^uint64(0))
	check(7, 100)
	check(8, 99)
	check(20, 20)
	check(2, 6) // no keys inside
	check(^uint64(0)-1, ^uint64(0))
	check(0, 0)
	check(256, 1<<40)
}

func testScanModel(t *testing.T, h Harness, ordered bool) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	model := map[uint64]uint64{}
	const keySpace = 2000
	for i := 0; i < 500; i++ {
		k := uint64(rng.Intn(keySpace))
		if rng.Intn(5) == 0 {
			if _, err := m.Remove(k); err != nil {
				t.Fatal(err)
			}
			delete(model, k)
		} else {
			v := rng.Uint64()
			if err := m.Insert(k, v); err != nil {
				t.Fatal(err)
			}
			model[k] = v
		}
	}
	for trial := 0; trial < 20; trial++ {
		lo := uint64(rng.Intn(keySpace))
		hi := lo + uint64(rng.Intn(keySpace/2))
		got := collectScan(t, m, lo, hi, ordered)
		for k, v := range model {
			if k >= lo && k <= hi {
				if gv, ok := got[k]; !ok || gv != v {
					t.Fatalf("trial %d scan [%d,%d]: key %d = (%d,%v), model %d", trial, lo, hi, k, gv, ok, v)
				}
				delete(got, k)
			}
		}
		if len(got) != 0 {
			t.Fatalf("trial %d scan [%d,%d]: %d pairs not in model: %v", trial, lo, hi, len(got), got)
		}
	}
	// The full-range Scan and Range must agree pair-for-pair.
	full := collectScan(t, m, 0, ^uint64(0), ordered)
	viaRange := map[uint64]uint64{}
	if err := m.(Ranger).Range(func(k, v uint64) bool { viaRange[k] = v; return true }); err != nil {
		t.Fatal(err)
	}
	if len(full) != len(viaRange) {
		t.Fatalf("full scan %d pairs, Range %d", len(full), len(viaRange))
	}
	for k, v := range viaRange {
		if full[k] != v {
			t.Fatalf("key %d: scan %d, range %d", k, full[k], v)
		}
	}
}

func testScanEarlyStop(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 50; k++ {
		if err := m.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	if err := m.Scan(0, ^uint64(0), func(k, v uint64) bool {
		n++
		return n < 5
	}); err != nil {
		t.Fatalf("early-stopped scan returned error: %v", err)
	}
	if n != 5 {
		t.Fatalf("early stop visited %d pairs, want 5", n)
	}
	// Stopping on the very first pair.
	n = 0
	if err := m.Scan(10, 20, func(k, v uint64) bool { n++; return false }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("first-pair stop visited %d", n)
	}
}

func testScanDegenerate(t *testing.T, h Harness) {
	p := newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	// Empty structure yields nothing.
	if err := m.Scan(0, ^uint64(0), func(k, v uint64) bool {
		t.Fatal("empty structure yielded a pair")
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert(42, 1); err != nil {
		t.Fatal(err)
	}
	// Inverted bounds are an empty range, not an error.
	if err := m.Scan(50, 10, func(k, v uint64) bool {
		t.Fatal("inverted range yielded a pair")
		return false
	}); err != nil {
		t.Fatalf("inverted range: %v", err)
	}
	// A range strictly outside the stored keys yields nothing.
	if err := m.Scan(43, 1000, func(k, v uint64) bool {
		t.Fatalf("out-of-range scan yielded key %d", k)
		return false
	}); err != nil {
		t.Fatal(err)
	}
}

// testScanViewFault injects a media error under the structure and
// verifies the iteration contract's fault clause on a ReadView: the scan
// must surface an error — typed ErrReadBusy, CorruptionError, or the
// poison error — and never complete silently over the damage; the owner
// instance then repairs, after which the view scans clean again.
func testScanViewFault(t *testing.T, h Harness) {
	p, m, rom := makeWithView(t, h, 16)
	want := map[uint64]uint64{}
	for k := uint64(0); k < 16; k++ {
		want[k] = concVal(0, k)
	}
	verify := func(m interface {
		Scan(lo, hi uint64, fn func(k, v uint64) bool) error
	}) error {
		got := map[uint64]uint64{}
		if err := m.Scan(0, ^uint64(0), func(k, v uint64) bool { got[k] = v; return true }); err != nil {
			return err
		}
		if len(got) != len(want) {
			t.Fatalf("scan returned %d pairs, want %d", len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("key %d: got %d want %d", k, got[k], v)
			}
		}
		return nil
	}
	p.InjectMediaError(m.Anchor().Off)
	err := rom.Scan(0, ^uint64(0), func(k, v uint64) bool { return true })
	if err == nil {
		t.Fatal("read-view scan over a poisoned page completed without error (partial iteration would look complete)")
	}
	// The error must be one of the typed, retryable read-view conditions
	// — never a silent success, and recognizably NOT data ("retry via the
	// owner path" is a meaningful verdict for each of these).
	if !pangolin.ReadBusy(err) && !pangolin.IsCorruption(err) && !pangolin.IsPoison(err) {
		t.Fatalf("read-view scan fault is not a typed retryable error: %v", err)
	}
	// The owner path repairs online…
	if err := verify(m); err != nil {
		t.Fatalf("owner scan after poison: %v", err)
	}
	// …after which the view iterates completely again.
	if err := verify(rom); err != nil {
		t.Fatalf("view scan after repair: %v", err)
	}
}
