package kvtest

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// RunConcurrent enforces the kv.Map concurrent-read contract for one
// structure: a second instance attached to the pool's ReadView serves
// Lookups from many goroutines at once, gated against commits by a
// reader/writer lock (the discipline internal/shard's reader gate
// provides in production). Readers must observe either the pre-image or
// the post-image of any in-flight transaction — never a torn value, a
// stale generation after a newer one, or a checksum failure — and
// faults on the view must surface as errors instead of mutating the
// pool. Run under -race this also proves Lookup touches no unsynchron-
// ized handle or pool state.
func RunConcurrent(t *testing.T, h Harness) {
	t.Run("PrePostImage", func(t *testing.T) { testConcurrentPrePost(t, h) })
	t.Run("RemoveInsertChurn", func(t *testing.T) { testConcurrentChurn(t, h) })
	t.Run("ViewFaultNotRepaired", func(t *testing.T) { testViewFault(t, h) })
	t.Run("ScanStorm", func(t *testing.T) { testConcurrentScanStorm(t, h) })
}

// concVal encodes a generation and key into one value so a torn or
// half-applied update is detectable from a single read.
func concVal(gen, k uint64) uint64 { return gen<<32 | k }

func concSizes() (keys uint64, gens uint64, readers int) {
	if testing.Short() {
		return 24, 8, 4
	}
	return 32, 24, 6
}

// makeWithView builds the structure, prefills generation 0, and
// attaches the read-view instance.
func makeWithView(t *testing.T, h Harness, keys uint64) (p *pangolin.Pool, m, rom kv.Map) {
	t.Helper()
	p = newPool(t, pangolin.ModePangolinMLPC)
	m, err := h.Make(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Run(func(tx *pangolin.Tx) error {
		for k := uint64(0); k < keys; k++ {
			if err := m.InsertTx(tx, k, concVal(0, k)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	rom, err = h.Attach(p.ReadView(), m.Anchor())
	if err != nil {
		t.Fatalf("attach read view: %v", err)
	}
	return p, m, rom
}

// testConcurrentPrePost: a writer commits whole-generation updates (one
// transaction rewrites every key) while gated readers storm Lookups.
// Every read must decode to a valid (gen, key) pair with gen no newer
// than the last committed generation and — per reader, per key —
// monotonically non-decreasing: commits are the only state changes and
// the gate excludes them during a Lookup, so going backwards or tearing
// would mean the read path leaked an intermediate state.
func testConcurrentPrePost(t *testing.T, h Harness) {
	keys, gens, readers := concSizes()
	p, m, rom := makeWithView(t, h, keys)

	var gate sync.RWMutex
	committedGen := uint64(0) // written under gate.Lock, read under gate.RLock
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 100))
			lastGen := make(map[uint64]uint64, keys)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % keys
				gate.RLock()
				v, ok, err := rom.Lookup(k)
				// Sample the committed bound before releasing the gate:
				// no commit can have interleaved since the read.
				bound := committedGen
				gate.RUnlock()
				switch {
				case err != nil:
					errs <- err
					return
				case !ok:
					errs <- errReadf("reader %d: key %d vanished", r, k)
					return
				case v&0xFFFFFFFF != k:
					errs <- errReadf("reader %d: key %d torn value %#x", r, k, v)
					return
				case v>>32 > bound:
					errs <- errReadf("reader %d: key %d gen %d beyond committed %d", r, k, v>>32, bound)
					return
				case v>>32 < lastGen[k]:
					errs <- errReadf("reader %d: key %d went backwards: gen %d after %d", r, k, v>>32, lastGen[k])
					return
				}
				lastGen[k] = v >> 32
			}
		}(r)
	}

	for gen := uint64(1); gen <= gens; gen++ {
		gate.Lock()
		err := p.Run(func(tx *pangolin.Tx) error {
			for k := uint64(0); k < keys; k++ {
				if err := m.InsertTx(tx, k, concVal(gen, k)); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			committedGen = gen
		}
		gate.Unlock()
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("gen %d commit: %v", gen, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// testConcurrentChurn removes and reinserts keys transactionally while
// gated readers run: a read must see the key absent or present with a
// valid generation, never torn, and generations per key never regress.
func testConcurrentChurn(t *testing.T, h Harness) {
	keys, gens, readers := concSizes()
	_, m, rom := makeWithView(t, h, keys)

	var gate sync.RWMutex
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 500))
			lastGen := make(map[uint64]uint64, keys)
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := rng.Uint64() % keys
				gate.RLock()
				v, ok, err := rom.Lookup(k)
				gate.RUnlock()
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					continue // mid-churn absence is a legal post-image
				}
				if v&0xFFFFFFFF != k {
					errs <- errReadf("reader %d: key %d torn value %#x", r, k, v)
					return
				}
				if g := v >> 32; g < lastGen[k] {
					errs <- errReadf("reader %d: key %d regressed to gen %d after %d", r, k, g, lastGen[k])
					return
				} else {
					lastGen[k] = g
				}
			}
		}(r)
	}

	rng := rand.New(rand.NewSource(9))
	for gen := uint64(1); gen <= gens; gen++ {
		k := rng.Uint64() % keys
		// Remove and reinsert in separate transactions so readers can
		// observe the absence window.
		gate.Lock()
		_, err := m.Remove(k)
		gate.Unlock()
		if err == nil {
			gate.Lock()
			err = m.Insert(k, concVal(gen, k))
			gate.Unlock()
		}
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("churn gen %d key %d: %v", gen, k, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// testViewFault injects a media error under the structure and verifies
// the division of labor: the read view surfaces the fault as an error
// without touching the pool (no online recovery from a reader), the
// owner instance then repairs it, and the view works again.
func testViewFault(t *testing.T, h Harness) {
	p, m, rom := makeWithView(t, h, 16)
	p.InjectMediaError(m.Anchor().Off)
	if _, _, err := rom.Lookup(3); err == nil {
		t.Fatal("read view repaired (or ignored) a poisoned page; it must surface the fault")
	}
	// The owner path runs online recovery…
	if v, ok, err := m.Lookup(3); err != nil || !ok || v != concVal(0, 3) {
		t.Fatalf("owner lookup after poison = (%d,%v,%v)", v, ok, err)
	}
	// …after which the view reads clean again.
	if v, ok, err := rom.Lookup(3); err != nil || !ok || v != concVal(0, 3) {
		t.Fatalf("view lookup after repair = (%d,%v,%v)", v, ok, err)
	}
}

func errReadf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// testConcurrentScanStorm: a writer commits whole-generation updates
// (one transaction rewrites every key) while gated readers storm
// ReadView Scans over random subranges. Because each scan runs under one
// gate hold, it observes exactly one committed image: every pair must
// decode to a valid (gen, key) value (no torn pairs), all pairs in one
// scan must carry the SAME generation (a pre- or post-image, never a mix),
// keys must ascend when the structure is ordered (no order regressions),
// bounds must hold, full-range scans must be complete, and per reader
// the observed generation never goes backwards.
func testConcurrentScanStorm(t *testing.T, h Harness) {
	keys, gens, readers := concSizes()
	p, m, rom := makeWithView(t, h, keys)

	var gate sync.RWMutex
	committedGen := uint64(0)
	stop := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r) + 900))
			lastGen := uint64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Alternate full-range scans (completeness check) with
				// random subranges (bounds check).
				lo, hi := uint64(0), keys-1
				full := rng.Intn(2) == 0
				if !full {
					lo = rng.Uint64() % keys
					hi = lo + rng.Uint64()%(keys-lo)
				}
				var pairs []struct{ k, v uint64 }
				gate.RLock()
				err := rom.Scan(lo, hi, func(k, v uint64) bool {
					pairs = append(pairs, struct{ k, v uint64 }{k, v})
					return true
				})
				bound := committedGen
				gate.RUnlock()
				if err != nil {
					errs <- err
					return
				}
				if uint64(len(pairs)) != hi-lo+1 {
					errs <- errReadf("reader %d: scan [%d,%d] yielded %d pairs, want %d", r, lo, hi, len(pairs), hi-lo+1)
					return
				}
				scanGen := ^uint64(0)
				seen := make(map[uint64]bool, len(pairs))
				for i, pr := range pairs {
					if pr.k < lo || pr.k > hi {
						errs <- errReadf("reader %d: scan [%d,%d] yielded out-of-bounds key %d", r, lo, hi, pr.k)
						return
					}
					if seen[pr.k] {
						errs <- errReadf("reader %d: scan [%d,%d] yielded key %d twice", r, lo, hi, pr.k)
						return
					}
					seen[pr.k] = true
					if h.Ordered && i > 0 && pr.k <= pairs[i-1].k {
						errs <- errReadf("reader %d: scan order regressed: %d after %d", r, pr.k, pairs[i-1].k)
						return
					}
					if pr.v&0xFFFFFFFF != pr.k {
						errs <- errReadf("reader %d: key %d torn value %#x", r, pr.k, pr.v)
						return
					}
					g := pr.v >> 32
					if scanGen == ^uint64(0) {
						scanGen = g
					} else if g != scanGen {
						errs <- errReadf("reader %d: scan mixed generations %d and %d (neither pre- nor post-image)", r, scanGen, g)
						return
					}
					if g > bound {
						errs <- errReadf("reader %d: key %d gen %d beyond committed %d", r, pr.k, g, bound)
						return
					}
				}
				if len(pairs) > 0 {
					if scanGen < lastGen {
						errs <- errReadf("reader %d: scan went backwards: gen %d after %d", r, scanGen, lastGen)
						return
					}
					lastGen = scanGen
				}
			}
		}(r)
	}

	for gen := uint64(1); gen <= gens; gen++ {
		gate.Lock()
		err := p.Run(func(tx *pangolin.Tx) error {
			for k := uint64(0); k < keys; k++ {
				if err := m.InsertTx(tx, k, concVal(gen, k)); err != nil {
					return err
				}
			}
			return nil
		})
		if err == nil {
			committedGen = gen
		}
		gate.Unlock()
		if err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("gen %d commit: %v", gen, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
