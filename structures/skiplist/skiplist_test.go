package skiplist

import (
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestNodeSizeMatchesPaper(t *testing.T) {
	// Table 3: skiplist object size 408 B.
	if s := unsafe.Sizeof(node{}); s != 408 {
		t.Fatalf("node size %d, want 408", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

func TestTowerDistribution(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolin})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	l, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	tall := 0
	for i := 0; i < 1000; i++ {
		if lv := l.randLevel(); lv > 1 {
			tall++
		}
		if lv := l.randLevel(); lv > maxLevel {
			t.Fatalf("level %d exceeds max", lv)
		}
	}
	// P(level > 1) = 1/2: expect roughly half.
	if tall < 300 || tall > 700 {
		t.Fatalf("tower distribution skewed: %d/2000 tall", tall)
	}
}

func TestOrderedTraversal(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	l, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{5, 1, 9, 3, 7} {
		if err := l.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Walk level 0: keys must be sorted.
	a, err := pangolin.GetFromPool[anchor](p, l.anchor)
	if err != nil {
		t.Fatal(err)
	}
	head, err := pangolin.GetFromPool[node](p, a.Head)
	if err != nil {
		t.Fatal(err)
	}
	var keys []uint64
	cur := head.Next[0]
	for !cur.IsNil() {
		n, err := pangolin.GetFromPool[node](p, cur)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, n.Key)
		cur = n.Next[0]
	}
	want := []uint64{1, 3, 5, 7, 9}
	if len(keys) != len(want) {
		t.Fatalf("keys %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys %v, want %v", keys, want)
		}
	}
}

func TestRangeOrdered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, true)
}
