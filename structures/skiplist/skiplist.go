// Package skiplist implements a persistent skip list over uint64 keys,
// one of the six PMDK data-structure benchmarks (§4.5). Nodes are
// 408-byte Pangolin objects (Table 3): a 24-level forward-pointer array
// plus key, value, and level.
//
// Tower heights are drawn from a deterministic pseudo-random sequence
// held in volatile memory; heights are a performance concern only, so
// they need no persistence.
package skiplist

import (
	"math/rand"

	"github.com/pangolin-go/pangolin"
)

const typeNode = 0x73 // 's'

// maxLevel gives the paper's 408-byte node: 24 OIDs + key/value/level.
const maxLevel = 24

// node is the persistent layout: 24*16 + 3*8 = 408 bytes.
type node struct {
	Next  [maxLevel]pangolin.OID
	Key   uint64
	Value uint64
	Level uint64 // tower height (1..maxLevel)
}

type anchor struct {
	Head  pangolin.OID // sentinel node, full height
	Count uint64
}

// List is a handle to a persistent skip list.
type List struct {
	p      *pangolin.Pool
	anchor pangolin.OID
	rng    *rand.Rand
}

// New allocates a fresh list.
func New(p *pangolin.Pool) (*List, error) {
	var aOID pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		var a *anchor
		aOID, a, err = pangolin.Alloc[anchor](tx, typeNode)
		if err != nil {
			return err
		}
		hOID, h, err := pangolin.Alloc[node](tx, typeNode)
		if err != nil {
			return err
		}
		h.Level = maxLevel
		a.Head = hOID
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &List{p: p, anchor: aOID, rng: rand.New(rand.NewSource(42))}, nil
}

// Attach reconnects to an existing list.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*List, error) {
	if _, err := p.ObjectSize(anchorOID); err != nil {
		return nil, err
	}
	return &List{p: p, anchor: anchorOID, rng: rand.New(rand.NewSource(43))}, nil
}

// Anchor returns the list's persistent anchor OID.
func (l *List) Anchor() pangolin.OID { return l.anchor }

// Len returns the number of keys.
func (l *List) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](l.p, l.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// randLevel draws a tower height with P(level ≥ i+1) = 1/2^i.
func (l *List) randLevel() uint64 {
	lv := uint64(1)
	for lv < maxLevel && l.rng.Intn(2) == 0 {
		lv++
	}
	return lv
}

// seek descends the tower pointers to the last node (possibly the head
// sentinel) whose key is strictly below k: seek(k).Next[0] is the first
// node with key >= k. Direct, pure reads (the concurrent-read contract);
// shared by Lookup and Scan.
func (l *List) seek(head pangolin.OID, k uint64) (*node, error) {
	cur, err := pangolin.GetFromPool[node](l.p, head)
	if err != nil {
		return nil, err
	}
	for lv := maxLevel - 1; lv >= 0; lv-- {
		for !cur.Next[lv].IsNil() {
			nxt, err := pangolin.GetFromPool[node](l.p, cur.Next[lv])
			if err != nil {
				return nil, err
			}
			if nxt.Key >= k {
				break
			}
			cur = nxt
		}
	}
	return cur, nil
}

// Lookup finds k with direct reads. It is a pure read (no pool writes,
// no handle state), honoring the kv.Map concurrent-read contract: on a
// ReadView instance it may run concurrently with other Lookups, gated
// against commits by the caller.
func (l *List) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](l.p, l.anchor)
	if err != nil {
		return 0, false, err
	}
	cur, err := l.seek(a.Head, k)
	if err != nil {
		return 0, false, err
	}
	if cur.Next[0].IsNil() {
		return 0, false, nil
	}
	cand, err := pangolin.GetFromPool[node](l.p, cur.Next[0])
	if err != nil {
		return 0, false, err
	}
	if cand.Key == k {
		return cand.Value, true, nil
	}
	return 0, false, nil
}

// findUpdate returns, inside a transaction, the predecessors of k at every
// level (read-only traversal).
func (l *List) findUpdate(tx *pangolin.Tx, head pangolin.OID, k uint64) ([maxLevel]pangolin.OID, error) {
	var update [maxLevel]pangolin.OID
	curOID := head
	cur, err := pangolin.Get[node](tx, curOID)
	if err != nil {
		return update, err
	}
	for lv := maxLevel - 1; lv >= 0; lv-- {
		for !cur.Next[lv].IsNil() {
			nxt, err := pangolin.Get[node](tx, cur.Next[lv])
			if err != nil {
				return update, err
			}
			if nxt.Key >= k {
				break
			}
			curOID = cur.Next[lv]
			cur = nxt
		}
		update[lv] = curOID
	}
	return update, nil
}

// LookupTx is Lookup inside the caller's transaction, observing the
// transaction's own uncommitted writes.
func (l *List) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, l.anchor)
	if err != nil {
		return 0, false, err
	}
	update, err := l.findUpdate(tx, a.Head, k)
	if err != nil {
		return 0, false, err
	}
	pred0, err := pangolin.Get[node](tx, update[0])
	if err != nil {
		return 0, false, err
	}
	if pred0.Next[0].IsNil() {
		return 0, false, nil
	}
	cand, err := pangolin.Get[node](tx, pred0.Next[0])
	if err != nil {
		return 0, false, err
	}
	if cand.Key == k {
		return cand.Value, true, nil
	}
	return 0, false, nil
}

// Insert adds or updates k in one transaction.
func (l *List) Insert(k, v uint64) error {
	return l.p.Run(func(tx *pangolin.Tx) error { return l.InsertTx(tx, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (l *List) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	level := l.randLevel()
	a, err := pangolin.Open[anchor](tx, l.anchor)
	if err != nil {
		return err
	}
	update, err := l.findUpdate(tx, a.Head, k)
	if err != nil {
		return err
	}
	pred0, err := pangolin.Get[node](tx, update[0])
	if err != nil {
		return err
	}
	if !pred0.Next[0].IsNil() {
		cand, err := pangolin.Get[node](tx, pred0.Next[0])
		if err != nil {
			return err
		}
		if cand.Key == k {
			// Declare only the 8-byte value field modified.
			data, err := tx.AddRange(pred0.Next[0], offValue, 8)
			if err != nil {
				return err
			}
			wn, err := pangolin.View[node](data)
			if err != nil {
				return err
			}
			wn.Value = v
			return nil
		}
	}
	nOID, n, err := pangolin.Alloc[node](tx, typeNode)
	if err != nil {
		return err
	}
	n.Key, n.Value, n.Level = k, v, level
	for lv := uint64(0); lv < level; lv++ {
		// Declare only the touched forward pointer (16 bytes per
		// level) — skiplist transactions modify a handful of
		// pointers of 408-byte nodes (Table 3).
		data, err := tx.AddRange(update[lv], lv*16, 16)
		if err != nil {
			return err
		}
		pred, err := pangolin.View[node](data)
		if err != nil {
			return err
		}
		n.Next[lv] = pred.Next[lv]
		pred.Next[lv] = nOID
	}
	a.Count++
	return nil
}

// Field offsets within the node's user data (for ranged updates).
const (
	offValue = 24*16 + 8 // Value follows Next[24] and Key
)

// Remove deletes k, reporting whether it was present.
func (l *List) Remove(k uint64) (bool, error) {
	found := false
	err := l.p.Run(func(tx *pangolin.Tx) error {
		var err error
		found, err = l.RemoveTx(tx, k)
		return err
	})
	return found, err
}

// RemoveTx deletes k inside the caller's transaction, reporting whether it
// was present.
func (l *List) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	a, err := pangolin.Open[anchor](tx, l.anchor)
	if err != nil {
		return false, err
	}
	update, err := l.findUpdate(tx, a.Head, k)
	if err != nil {
		return false, err
	}
	pred0, err := pangolin.Get[node](tx, update[0])
	if err != nil {
		return false, err
	}
	victim := pred0.Next[0]
	if victim.IsNil() {
		return false, nil
	}
	vn, err := pangolin.Get[node](tx, victim)
	if err != nil {
		return false, err
	}
	if vn.Key != k {
		return false, nil
	}
	for lv := uint64(0); lv < vn.Level; lv++ {
		predR, err := pangolin.Get[node](tx, update[lv])
		if err != nil {
			return false, err
		}
		if predR.Next[lv] != victim {
			continue
		}
		data, err := tx.AddRange(update[lv], lv*16, 16)
		if err != nil {
			return false, err
		}
		pred, err := pangolin.View[node](data)
		if err != nil {
			return false, err
		}
		pred.Next[lv] = vn.Next[lv]
	}
	a.Count--
	return true, tx.Free(victim)
}

// Range calls fn for every key/value pair in ascending key order (the
// level-0 chain), stopping early if fn returns false. Reads are direct
// (pgl_get); do not mutate the list during iteration.
func (l *List) Range(fn func(k, v uint64) bool) error {
	return l.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in ascending key
// order, stopping early if fn returns false. The tower pointers locate
// the first key >= lo without touching the chain below it, then the
// level-0 chain is followed until a key exceeds hi. It follows the
// kv.Map iteration contract: a mid-scan read fault aborts the walk and
// returns its error.
func (l *List) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](l.p, l.anchor)
	if err != nil {
		return err
	}
	cur, err := l.seek(a.Head, lo)
	if err != nil {
		return err
	}
	oid := cur.Next[0]
	for !oid.IsNil() {
		n, err := pangolin.GetFromPool[node](l.p, oid)
		if err != nil {
			return err
		}
		if n.Key > hi {
			return nil
		}
		if !fn(n.Key, n.Value) {
			return nil
		}
		oid = n.Next[0]
	}
	return nil
}
