// Package rbtree implements a persistent red-black tree over uint64 keys,
// one of the six PMDK data-structure benchmarks (§4.5). Nodes are
// 80-byte Pangolin objects (Table 3).
//
// The implementation is the classic CLRS algorithm with parent pointers
// and an explicit sentinel node (as PMDK's rbtree uses), so rotation and
// fixup code never special-cases nil: the sentinel is a real, black,
// persistent object whose links may be written freely.
package rbtree

import (
	"fmt"

	"github.com/pangolin-go/pangolin"
)

const typeNode = 0x72 // 'r'

const (
	red   uint64 = 0
	black uint64 = 1
)

// node is the persistent layout: 80 bytes, matching the paper.
type node struct {
	Parent pangolin.OID
	Left   pangolin.OID
	Right  pangolin.OID
	Key    uint64
	Value  uint64
	Color  uint64
	_      uint64
}

type anchor struct {
	Root     pangolin.OID // tree root, or Sentinel when empty
	Sentinel pangolin.OID
	Count    uint64
}

// Tree is a handle to a persistent red-black tree.
type Tree struct {
	p        *pangolin.Pool
	anchor   pangolin.OID
	sentinel pangolin.OID // cached from the anchor
}

// New allocates a fresh tree (anchor plus sentinel node).
func New(p *pangolin.Pool) (*Tree, error) {
	var aOID, sOID pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		var a *anchor
		aOID, a, err = pangolin.Alloc[anchor](tx, typeNode)
		if err != nil {
			return err
		}
		var s *node
		sOID, s, err = pangolin.Alloc[node](tx, typeNode)
		if err != nil {
			return err
		}
		s.Color = black
		s.Parent, s.Left, s.Right = sOID, sOID, sOID
		a.Root = sOID
		a.Sentinel = sOID
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: aOID, sentinel: sOID}, nil
}

// Attach reconnects to an existing tree.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*Tree, error) {
	a, err := pangolin.GetFromPool[anchor](p, anchorOID)
	if err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: anchorOID, sentinel: a.Sentinel}, nil
}

// Anchor returns the tree's persistent anchor OID.
func (t *Tree) Anchor() pangolin.OID { return t.anchor }

// Len returns the number of keys.
func (t *Tree) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// Lookup finds k with direct (unbuffered) reads. It is a pure read (no
// pool writes, no handle state), honoring the kv.Map concurrent-read
// contract: on a ReadView instance it may run concurrently with other
// Lookups, gated against commits by the caller.
func (t *Tree) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for cur != t.sentinel {
		n, err := pangolin.GetFromPool[node](t.p, cur)
		if err != nil {
			return 0, false, err
		}
		switch {
		case k == n.Key:
			return n.Value, true, nil
		case k < n.Key:
			cur = n.Left
		default:
			cur = n.Right
		}
	}
	return 0, false, nil
}

// treeErr carries an access error out of the recursive algorithm; it is
// recovered at the transaction boundary (the panic never crosses the
// package API).
type treeErr struct{ err error }

// w is the write-side working view inside one transaction.
type w struct {
	tx *pangolin.Tx
	a  *anchor
	s  pangolin.OID
}

// n opens a node for writing (idempotent per transaction).
func (t *w) n(oid pangolin.OID) *node {
	p, err := pangolin.Open[node](t.tx, oid)
	if err != nil {
		panic(treeErr{err})
	}
	return p
}

// r reads a node without declaring a write (pgl_get; the transaction's
// own micro-buffer when it has one open).
func (t *w) r(oid pangolin.OID) *node {
	p, err := pangolin.Get[node](t.tx, oid)
	if err != nil {
		panic(treeErr{err})
	}
	return p
}

func (t *w) rotateLeft(x pangolin.OID) {
	xn := t.n(x)
	y := xn.Right
	yn := t.n(y)
	xn.Right = yn.Left
	if yn.Left != t.s {
		t.n(yn.Left).Parent = x
	}
	yn.Parent = xn.Parent
	switch {
	case xn.Parent == t.s:
		t.a.Root = y
	case x == t.n(xn.Parent).Left:
		t.n(xn.Parent).Left = y
	default:
		t.n(xn.Parent).Right = y
	}
	yn.Left = x
	xn.Parent = y
}

func (t *w) rotateRight(x pangolin.OID) {
	xn := t.n(x)
	y := xn.Left
	yn := t.n(y)
	xn.Left = yn.Right
	if yn.Right != t.s {
		t.n(yn.Right).Parent = x
	}
	yn.Parent = xn.Parent
	switch {
	case xn.Parent == t.s:
		t.a.Root = y
	case x == t.n(xn.Parent).Right:
		t.n(xn.Parent).Right = y
	default:
		t.n(xn.Parent).Left = y
	}
	yn.Right = x
	xn.Parent = y
}

// LookupTx is Lookup inside the caller's transaction, observing the
// transaction's own uncommitted writes.
func (t *Tree) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for cur != t.sentinel {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return 0, false, err
		}
		switch {
		case k == n.Key:
			return n.Value, true, nil
		case k < n.Key:
			cur = n.Left
		default:
			cur = n.Right
		}
	}
	return 0, false, nil
}

// Insert adds or updates k in one transaction.
func (t *Tree) Insert(k, v uint64) error {
	return t.run(func(tw *w) error { return t.insertW(tw, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (t *Tree) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	return t.runIn(tx, func(tw *w) error { return t.insertW(tw, k, v) })
}

func (t *Tree) insertW(tw *w, k, v uint64) error {
	// BST descent: reads only (pgl_get), writes declared on the
	// touched nodes below.
	parent := tw.s
	cur := tw.a.Root
	for cur != tw.s {
		cn := tw.r(cur)
		if k == cn.Key {
			tw.n(cur).Value = v
			return nil
		}
		parent = cur
		if k < cn.Key {
			cur = cn.Left
		} else {
			cur = cn.Right
		}
	}
	zOID, z, err := pangolin.Alloc[node](tw.tx, typeNode)
	if err != nil {
		return err
	}
	z.Key, z.Value = k, v
	z.Color = red
	z.Left, z.Right = tw.s, tw.s
	z.Parent = parent
	switch {
	case parent == tw.s:
		tw.a.Root = zOID
	case k < tw.r(parent).Key:
		tw.n(parent).Left = zOID
	default:
		tw.n(parent).Right = zOID
	}
	tw.a.Count++
	tw.insertFixup(zOID)
	return nil
}

func (t *w) insertFixup(z pangolin.OID) {
	for {
		zp := t.n(z).Parent
		if zp == t.s || t.n(zp).Color != red {
			break
		}
		zpp := t.n(zp).Parent
		if zp == t.n(zpp).Left {
			y := t.n(zpp).Right // uncle
			if y != t.s && t.n(y).Color == red {
				t.n(zp).Color = black
				t.n(y).Color = black
				t.n(zpp).Color = red
				z = zpp
				continue
			}
			if z == t.n(zp).Right {
				z = zp
				t.rotateLeft(z)
				zp = t.n(z).Parent
				zpp = t.n(zp).Parent
			}
			t.n(zp).Color = black
			t.n(zpp).Color = red
			t.rotateRight(zpp)
		} else {
			y := t.n(zpp).Left
			if y != t.s && t.n(y).Color == red {
				t.n(zp).Color = black
				t.n(y).Color = black
				t.n(zpp).Color = red
				z = zpp
				continue
			}
			if z == t.n(zp).Left {
				z = zp
				t.rotateRight(z)
				zp = t.n(z).Parent
				zpp = t.n(zp).Parent
			}
			t.n(zp).Color = black
			t.n(zpp).Color = red
			t.rotateLeft(zpp)
		}
	}
	t.n(t.a.Root).Color = black
}

// transplant replaces subtree u with subtree v (CLRS), updating v's
// parent even when v is the sentinel — the property deleteFixup needs.
func (t *w) transplant(u, v pangolin.OID) {
	up := t.n(u).Parent
	switch {
	case up == t.s:
		t.a.Root = v
	case u == t.n(up).Left:
		t.n(up).Left = v
	default:
		t.n(up).Right = v
	}
	t.n(v).Parent = up
}

// Remove deletes k, reporting whether it was present.
func (t *Tree) Remove(k uint64) (bool, error) {
	found := false
	err := t.run(func(tw *w) error { return t.removeW(tw, k, &found) })
	return found, err
}

// RemoveTx deletes k inside the caller's transaction, reporting whether it
// was present.
func (t *Tree) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	found := false
	err := t.runIn(tx, func(tw *w) error { return t.removeW(tw, k, &found) })
	return found, err
}

func (t *Tree) removeW(tw *w, k uint64, found *bool) error {
	z := tw.a.Root
	for z != tw.s {
		zn := tw.r(z)
		if k == zn.Key {
			break
		}
		if k < zn.Key {
			z = zn.Left
		} else {
			z = zn.Right
		}
	}
	if z == tw.s {
		return nil
	}
	*found = true
	y := z
	yColor := tw.n(y).Color
	var x pangolin.OID
	switch {
	case tw.n(z).Left == tw.s:
		x = tw.n(z).Right
		tw.transplant(z, x)
	case tw.n(z).Right == tw.s:
		x = tw.n(z).Left
		tw.transplant(z, x)
	default:
		// Successor: minimum of right subtree.
		y = tw.n(z).Right
		for tw.n(y).Left != tw.s {
			y = tw.n(y).Left
		}
		yColor = tw.n(y).Color
		x = tw.n(y).Right
		if tw.n(y).Parent == z {
			tw.n(x).Parent = y
		} else {
			tw.transplant(y, x)
			tw.n(y).Right = tw.n(z).Right
			tw.n(tw.n(y).Right).Parent = y
		}
		tw.transplant(z, y)
		tw.n(y).Left = tw.n(z).Left
		tw.n(tw.n(y).Left).Parent = y
		tw.n(y).Color = tw.n(z).Color
	}
	if yColor == black {
		tw.deleteFixup(x)
	}
	tw.a.Count--
	return tw.tx.Free(z)
}

func (t *w) deleteFixup(x pangolin.OID) {
	for x != t.a.Root && t.n(x).Color == black {
		xp := t.n(x).Parent
		if x == t.n(xp).Left {
			wS := t.n(xp).Right
			if t.n(wS).Color == red {
				t.n(wS).Color = black
				t.n(xp).Color = red
				t.rotateLeft(xp)
				xp = t.n(x).Parent
				wS = t.n(xp).Right
			}
			if t.n(t.n(wS).Left).Color == black && t.n(t.n(wS).Right).Color == black {
				t.n(wS).Color = red
				x = xp
				continue
			}
			if t.n(t.n(wS).Right).Color == black {
				t.n(t.n(wS).Left).Color = black
				t.n(wS).Color = red
				t.rotateRight(wS)
				xp = t.n(x).Parent
				wS = t.n(xp).Right
			}
			t.n(wS).Color = t.n(xp).Color
			t.n(xp).Color = black
			t.n(t.n(wS).Right).Color = black
			t.rotateLeft(xp)
			x = t.a.Root
		} else {
			wS := t.n(xp).Left
			if t.n(wS).Color == red {
				t.n(wS).Color = black
				t.n(xp).Color = red
				t.rotateRight(xp)
				xp = t.n(x).Parent
				wS = t.n(xp).Left
			}
			if t.n(t.n(wS).Right).Color == black && t.n(t.n(wS).Left).Color == black {
				t.n(wS).Color = red
				x = xp
				continue
			}
			if t.n(t.n(wS).Left).Color == black {
				t.n(t.n(wS).Right).Color = black
				t.n(wS).Color = red
				t.rotateLeft(wS)
				xp = t.n(x).Parent
				wS = t.n(xp).Left
			}
			t.n(wS).Color = t.n(xp).Color
			t.n(xp).Color = black
			t.n(t.n(wS).Left).Color = black
			t.rotateRight(xp)
			x = t.a.Root
		}
	}
	t.n(x).Color = black
}

// run wraps a mutation in a transaction with the panic-to-error bridge.
func (t *Tree) run(fn func(*w) error) error {
	return t.p.Run(func(tx *pangolin.Tx) error { return t.runIn(tx, fn) })
}

// runIn executes fn against the caller's transaction, bridging the
// algorithm's access panics back to an error return (on which the caller
// must abort the transaction).
func (t *Tree) runIn(tx *pangolin.Tx, fn func(*w) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			te, ok := r.(treeErr)
			if !ok {
				panic(r)
			}
			err = te.err
		}
	}()
	a, aerr := pangolin.Open[anchor](tx, t.anchor)
	if aerr != nil {
		return aerr
	}
	return fn(&w{tx: tx, a: a, s: t.sentinel})
}

// Validate checks the red-black invariants (test helper): root is black,
// no red node has a red child, and every root-to-sentinel path has the
// same black height. It returns the tree's black height.
func (t *Tree) Validate() (int, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, err
	}
	if a.Root == t.sentinel {
		return 0, nil
	}
	root, err := pangolin.GetFromPool[node](t.p, a.Root)
	if err != nil {
		return 0, err
	}
	if root.Color != black {
		return 0, fmt.Errorf("rbtree: root is red")
	}
	return t.validate(a.Root, 0, ^uint64(0))
}

func (t *Tree) validate(oid pangolin.OID, lo, hi uint64) (int, error) {
	if oid == t.sentinel {
		return 1, nil
	}
	n, err := pangolin.GetFromPool[node](t.p, oid)
	if err != nil {
		return 0, err
	}
	if n.Key < lo || n.Key > hi {
		return 0, fmt.Errorf("rbtree: BST order violated at key %d", n.Key)
	}
	if n.Color == red {
		for _, c := range []pangolin.OID{n.Left, n.Right} {
			if c == t.sentinel {
				continue
			}
			cn, err := pangolin.GetFromPool[node](t.p, c)
			if err != nil {
				return 0, err
			}
			if cn.Color == red {
				return 0, fmt.Errorf("rbtree: red-red violation at key %d", n.Key)
			}
		}
	}
	var hiL, loR uint64
	if n.Key > 0 {
		hiL = n.Key - 1
	}
	loR = n.Key + 1
	lh, err := t.validate(n.Left, lo, hiL)
	if err != nil {
		return 0, err
	}
	rh, err := t.validate(n.Right, loR, hi)
	if err != nil {
		return 0, err
	}
	if lh != rh {
		return 0, fmt.Errorf("rbtree: black-height mismatch at key %d (%d vs %d)", n.Key, lh, rh)
	}
	if n.Color == black {
		lh++
	}
	return lh, nil
}

// Range calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false. Reads are direct (pgl_get); do not
// mutate the tree during iteration.
func (t *Tree) Range(fn func(k, v uint64) bool) error {
	return t.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in ascending key
// order, stopping early if fn returns false; subtrees entirely outside
// the bounds are never read. It follows the kv.Map iteration contract:
// a mid-scan read fault aborts the walk and returns its error.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return err
	}
	_, err = t.scanInOrder(a.Root, lo, hi, fn)
	return err
}

func (t *Tree) scanInOrder(oid pangolin.OID, lo, hi uint64, fn func(k, v uint64) bool) (bool, error) {
	if oid == t.sentinel {
		return true, nil
	}
	n, err := pangolin.GetFromPool[node](t.p, oid)
	if err != nil {
		return false, err
	}
	// The left subtree holds keys < n.Key: worth visiting only when
	// n.Key > lo; symmetrically the right subtree only when n.Key < hi.
	if n.Key > lo {
		if cont, err := t.scanInOrder(n.Left, lo, hi, fn); err != nil || !cont {
			return cont, err
		}
	}
	if n.Key >= lo && n.Key <= hi {
		if !fn(n.Key, n.Value) {
			return false, nil
		}
	}
	if n.Key >= hi {
		return true, nil
	}
	return t.scanInOrder(n.Right, lo, hi, fn)
}
