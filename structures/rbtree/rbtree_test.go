package rbtree

import (
	"math/rand"
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestNodeSizeMatchesPaper(t *testing.T) {
	// Table 3: rbtree object size 80 B.
	if s := unsafe.Sizeof(node{}); s != 80 {
		t.Fatalf("node size %d, want 80", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

// TestInvariantsUnderChurn checks the red-black invariants after every
// operation in a random insert/remove workload.
func TestInvariantsUnderChurn(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	model := make(map[uint64]uint64)
	for i := 0; i < 600; i++ {
		k := uint64(rng.Intn(120))
		if rng.Intn(3) == 0 {
			ok, err := tr.Remove(k)
			if err != nil {
				t.Fatalf("op %d: remove: %v", i, err)
			}
			if _, want := model[k]; ok != want {
				t.Fatalf("op %d: remove %d = %v, want %v", i, k, ok, want)
			}
			delete(model, k)
		} else {
			if err := tr.Insert(k, k*2); err != nil {
				t.Fatalf("op %d: insert: %v", i, err)
			}
			model[k] = k * 2
		}
		if i%25 == 0 {
			if _, err := tr.Validate(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if _, err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if n, _ := tr.Len(); n != uint64(len(model)) {
		t.Fatalf("len %d, model %d", n, len(model))
	}
}

// TestBlackHeightGrowsLogarithmically sanity-checks balance: 1023 keys
// must give black height ≤ 10.
func TestBlackHeightGrowsLogarithmically(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 1023; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	bh, err := tr.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if bh > 10 {
		t.Fatalf("black height %d for 1023 sequential inserts", bh)
	}
}

func TestRangeOrdered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, true)
}
