// Package btree implements a persistent B-tree over uint64 keys, one of
// the six PMDK data-structure benchmarks (§4.5). Nodes are 304-byte
// Pangolin objects (Table 3), order 8 (up to 7 items and 8 children per
// node), like PMDK's btree_map.
//
// Insertion uses preemptive splitting (full children split during the
// descent); deletion is the classic CLRS algorithm that guarantees
// minimum degree on the way down via borrowing or merging.
package btree

import (
	"github.com/pangolin-go/pangolin"
)

const typeNode = 0x62 // 'b'

const (
	maxItems = 7 // 2t-1 with t = 4
	minItems = 3 // t-1
)

type item struct {
	Key   uint64
	Value uint64
}

// node is the persistent layout: 304 bytes.
type node struct {
	N        uint64          // live items
	Items    [8]item         // capacity 8; logical max 7
	Children [9]pangolin.OID // Children[0..N] when internal
	_        [3]uint64
}

func (n *node) leaf() bool { return n.Children[0].IsNil() }

type anchor struct {
	Root  pangolin.OID
	Count uint64
}

// Tree is a handle to a persistent B-tree.
type Tree struct {
	p      *pangolin.Pool
	anchor pangolin.OID
}

// New allocates a fresh tree.
func New(p *pangolin.Pool) (*Tree, error) {
	var aOID pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		var a *anchor
		aOID, a, err = pangolin.Alloc[anchor](tx, typeNode)
		if err != nil {
			return err
		}
		rOID, _, err := pangolin.Alloc[node](tx, typeNode)
		if err != nil {
			return err
		}
		a.Root = rOID
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: aOID}, nil
}

// Attach reconnects to an existing tree.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*Tree, error) {
	if _, err := p.ObjectSize(anchorOID); err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: anchorOID}, nil
}

// Anchor returns the tree's persistent anchor OID.
func (t *Tree) Anchor() pangolin.OID { return t.anchor }

// Len returns the number of keys.
func (t *Tree) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// Lookup finds k with direct reads. It is a pure read (no pool writes,
// no handle state), honoring the kv.Map concurrent-read contract: on a
// ReadView instance it may run concurrently with other Lookups, gated
// against commits by the caller.
func (t *Tree) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for !cur.IsNil() {
		n, err := pangolin.GetFromPool[node](t.p, cur)
		if err != nil {
			return 0, false, err
		}
		i := 0
		for i < int(n.N) && k > n.Items[i].Key {
			i++
		}
		if i < int(n.N) && k == n.Items[i].Key {
			return n.Items[i].Value, true, nil
		}
		if n.leaf() {
			return 0, false, nil
		}
		cur = n.Children[i]
	}
	return 0, false, nil
}

type treeErr struct{ err error }

type w struct {
	tx *pangolin.Tx
	a  *anchor
}

func (t *w) n(oid pangolin.OID) *node {
	p, err := pangolin.Open[node](t.tx, oid)
	if err != nil {
		panic(treeErr{err})
	}
	return p
}

// r reads a node without declaring a write (pgl_get semantics).
func (t *w) r(oid pangolin.OID) *node {
	p, err := pangolin.Get[node](t.tx, oid)
	if err != nil {
		panic(treeErr{err})
	}
	return p
}

func (t *w) alloc() (pangolin.OID, *node) {
	oid, n, err := pangolin.Alloc[node](t.tx, typeNode)
	if err != nil {
		panic(treeErr{err})
	}
	return oid, n
}

func (t *w) free(oid pangolin.OID) {
	if err := t.tx.Free(oid); err != nil {
		panic(treeErr{err})
	}
}

// splitChild splits the full child at index i of parent p (CLRS).
func (t *w) splitChild(pOID pangolin.OID, i int) {
	pn := t.n(pOID)
	cOID := pn.Children[i]
	cn := t.n(cOID)
	zOID, zn := t.alloc()
	// Right half (t..2t-2) moves to z; median (t-1) moves up.
	const th = (maxItems + 1) / 2 // t = 4
	zn.N = minItems
	for j := 0; j < minItems; j++ {
		zn.Items[j] = cn.Items[th+j]
		cn.Items[th+j] = item{}
	}
	if !cn.leaf() {
		for j := 0; j <= minItems; j++ {
			zn.Children[j] = cn.Children[th+j]
			cn.Children[th+j] = pangolin.NilOID
		}
	}
	median := cn.Items[th-1]
	cn.Items[th-1] = item{}
	cn.N = minItems
	// Shift parent items/children right.
	for j := int(pn.N); j > i; j-- {
		pn.Items[j] = pn.Items[j-1]
		pn.Children[j+1] = pn.Children[j]
	}
	pn.Items[i] = median
	pn.Children[i+1] = zOID
	pn.N++
}

// LookupTx is Lookup inside the caller's transaction, observing the
// transaction's own uncommitted writes.
func (t *Tree) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for !cur.IsNil() {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return 0, false, err
		}
		i := 0
		for i < int(n.N) && k > n.Items[i].Key {
			i++
		}
		if i < int(n.N) && k == n.Items[i].Key {
			return n.Items[i].Value, true, nil
		}
		if n.leaf() {
			return 0, false, nil
		}
		cur = n.Children[i]
	}
	return 0, false, nil
}

// Insert adds or updates k in one transaction.
func (t *Tree) Insert(k, v uint64) error {
	return t.run(func(tw *w) error { return t.insertW(tw, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (t *Tree) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	return t.runIn(tx, func(tw *w) error { return t.insertW(tw, k, v) })
}

func (t *Tree) insertW(tw *w, k, v uint64) error {
	root := tw.a.Root
	if tw.r(root).N == maxItems {
		// Grow: new root with the old root as child 0.
		newOID, newRoot := tw.alloc()
		newRoot.Children[0] = root
		tw.a.Root = newOID
		tw.splitChild(newOID, 0)
		root = newOID
	}
	cur := root
	for {
		cn := tw.r(cur)
		i := 0
		for i < int(cn.N) && k > cn.Items[i].Key {
			i++
		}
		if i < int(cn.N) && k == cn.Items[i].Key {
			tw.n(cur).Items[i].Value = v
			return nil
		}
		if cn.leaf() {
			wn := tw.n(cur)
			for j := int(wn.N); j > i; j-- {
				wn.Items[j] = wn.Items[j-1]
			}
			wn.Items[i] = item{Key: k, Value: v}
			wn.N++
			tw.a.Count++
			return nil
		}
		if tw.r(cn.Children[i]).N == maxItems {
			tw.splitChild(cur, i)
			cn = tw.r(cur)
			if k == cn.Items[i].Key {
				tw.n(cur).Items[i].Value = v
				return nil
			}
			if k > cn.Items[i].Key {
				i++
			}
		}
		cur = tw.r(cur).Children[i]
	}
}

// Remove deletes k, reporting whether it was present.
func (t *Tree) Remove(k uint64) (bool, error) {
	found := false
	err := t.run(func(tw *w) error { return t.removeW(tw, k, &found) })
	return found, err
}

// RemoveTx deletes k inside the caller's transaction, reporting whether it
// was present.
func (t *Tree) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	found := false
	err := t.runIn(tx, func(tw *w) error { return t.removeW(tw, k, &found) })
	return found, err
}

func (t *Tree) removeW(tw *w, k uint64, foundp *bool) error {
	found := false
	defer func() { *foundp = found }()
	found = tw.remove(tw.a.Root, k)
	if found {
		tw.a.Count--
	}
	// Shrink: an empty internal root is replaced by its only child.
	rn := tw.r(tw.a.Root)
	if rn.N == 0 && !rn.leaf() {
		old := tw.a.Root
		tw.a.Root = rn.Children[0]
		tw.free(old)
	}
	return nil
}

// remove deletes k from the subtree at oid; oid always has > minItems
// items when descending (except the root), per CLRS.
func (t *w) remove(oid pangolin.OID, k uint64) bool {
	n := t.r(oid)
	i := 0
	for i < int(n.N) && k > n.Items[i].Key {
		i++
	}
	if i < int(n.N) && k == n.Items[i].Key {
		if n.leaf() {
			wn := t.n(oid)
			for j := i; j < int(wn.N)-1; j++ {
				wn.Items[j] = wn.Items[j+1]
			}
			wn.Items[wn.N-1] = item{}
			wn.N--
			return true
		}
		return t.removeInternal(oid, i)
	}
	if n.leaf() {
		return false
	}
	return t.remove(t.ensureChild(oid, i), k)
}

// removeInternal removes the item at index i of internal node oid (CLRS
// cases 2a/2b/2c).
func (t *w) removeInternal(oid pangolin.OID, i int) bool {
	n := t.n(oid)
	k := n.Items[i].Key
	left, right := n.Children[i], n.Children[i+1]
	if t.n(left).N > minItems {
		// Predecessor replaces the item.
		pred := t.maxItem(left)
		n.Items[i] = pred
		return t.remove(t.ensureChild(oid, i), pred.Key)
	}
	if t.n(right).N > minItems {
		succ := t.minItem(right)
		n.Items[i] = succ
		return t.remove(t.ensureChild(oid, i+1), succ.Key)
	}
	// Merge left + item + right, then delete from the merged child.
	t.mergeChildren(oid, i)
	return t.remove(left, k)
}

func (t *w) maxItem(oid pangolin.OID) item {
	for {
		n := t.r(oid)
		if n.leaf() {
			return n.Items[n.N-1]
		}
		oid = n.Children[n.N]
	}
}

func (t *w) minItem(oid pangolin.OID) item {
	for {
		n := t.r(oid)
		if n.leaf() {
			return n.Items[0]
		}
		oid = n.Children[0]
	}
}

// ensureChild guarantees child i of oid has more than minItems items
// before descending, borrowing from a sibling or merging (CLRS case 3).
// It returns the (possibly merged) child to descend into.
func (t *w) ensureChild(oid pangolin.OID, i int) pangolin.OID {
	nr := t.r(oid)
	c := nr.Children[i]
	if t.r(c).N > minItems {
		return c
	}
	n := t.n(oid)
	// Borrow from the left sibling.
	if i > 0 && t.r(n.Children[i-1]).N > minItems {
		ln := t.n(n.Children[i-1])
		cn := t.n(c)
		for j := int(cn.N); j > 0; j-- {
			cn.Items[j] = cn.Items[j-1]
		}
		if !cn.leaf() {
			for j := int(cn.N) + 1; j > 0; j-- {
				cn.Children[j] = cn.Children[j-1]
			}
			cn.Children[0] = ln.Children[ln.N]
			ln.Children[ln.N] = pangolin.NilOID
		}
		cn.Items[0] = n.Items[i-1]
		cn.N++
		n.Items[i-1] = ln.Items[ln.N-1]
		ln.Items[ln.N-1] = item{}
		ln.N--
		return c
	}
	// Borrow from the right sibling.
	if i < int(n.N) && t.r(n.Children[i+1]).N > minItems {
		rn := t.n(n.Children[i+1])
		cn := t.n(c)
		cn.Items[cn.N] = n.Items[i]
		if !cn.leaf() {
			cn.Children[cn.N+1] = rn.Children[0]
		}
		cn.N++
		n.Items[i] = rn.Items[0]
		for j := 0; j < int(rn.N)-1; j++ {
			rn.Items[j] = rn.Items[j+1]
		}
		rn.Items[rn.N-1] = item{}
		if !rn.leaf() {
			for j := 0; j < int(rn.N); j++ {
				rn.Children[j] = rn.Children[j+1]
			}
			rn.Children[rn.N] = pangolin.NilOID
		}
		rn.N--
		return c
	}
	// Merge with a sibling.
	if i < int(n.N) {
		t.mergeChildren(oid, i)
		return c
	}
	t.mergeChildren(oid, i-1)
	return n.Children[i-1]
}

// mergeChildren merges child i, item i, and child i+1 of oid into child i
// and frees child i+1.
func (t *w) mergeChildren(oid pangolin.OID, i int) {
	n := t.n(oid)
	left, right := n.Children[i], n.Children[i+1]
	ln, rn := t.n(left), t.n(right)
	ln.Items[ln.N] = n.Items[i]
	for j := 0; j < int(rn.N); j++ {
		ln.Items[int(ln.N)+1+j] = rn.Items[j]
	}
	if !ln.leaf() {
		for j := 0; j <= int(rn.N); j++ {
			ln.Children[int(ln.N)+1+j] = rn.Children[j]
		}
	}
	ln.N += rn.N + 1
	for j := i; j < int(n.N)-1; j++ {
		n.Items[j] = n.Items[j+1]
		n.Children[j+1] = n.Children[j+2]
	}
	n.Items[n.N-1] = item{}
	n.Children[n.N] = pangolin.NilOID
	n.N--
	t.free(right)
}

func (t *Tree) run(fn func(*w) error) error {
	return t.p.Run(func(tx *pangolin.Tx) error { return t.runIn(tx, fn) })
}

// runIn executes fn against the caller's transaction, bridging the
// algorithm's access panics back to an error return (on which the caller
// must abort the transaction).
func (t *Tree) runIn(tx *pangolin.Tx, fn func(*w) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			te, ok := r.(treeErr)
			if !ok {
				panic(r)
			}
			err = te.err
		}
	}()
	a, aerr := pangolin.Open[anchor](tx, t.anchor)
	if aerr != nil {
		return aerr
	}
	return fn(&w{tx: tx, a: a})
}

// Range calls fn for every key/value pair in ascending key order,
// stopping early if fn returns false. Reads are direct (pgl_get); do not
// mutate the tree during iteration.
func (t *Tree) Range(fn func(k, v uint64) bool) error {
	return t.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in ascending key
// order, stopping early if fn returns false; subtrees entirely outside
// the bounds are never read. It follows the kv.Map iteration contract:
// a mid-scan read fault aborts the walk and returns its error, so a nil
// return means fn saw every in-range pair it did not stop early of.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return err
	}
	_, err = t.scanWalk(a.Root, lo, hi, fn)
	return err
}

func (t *Tree) scanWalk(oid pangolin.OID, lo, hi uint64, fn func(k, v uint64) bool) (bool, error) {
	n, err := pangolin.GetFromPool[node](t.p, oid)
	if err != nil {
		return false, err
	}
	// Items below i hold keys < lo, and so do their child subtrees;
	// child i is the first that can reach [lo, hi].
	i := 0
	for i < int(n.N) && n.Items[i].Key < lo {
		i++
	}
	for ; i < int(n.N); i++ {
		if !n.leaf() {
			if cont, err := t.scanWalk(n.Children[i], lo, hi, fn); err != nil || !cont {
				return cont, err
			}
		}
		if n.Items[i].Key > hi {
			return false, nil
		}
		if !fn(n.Items[i].Key, n.Items[i].Value) {
			return false, nil
		}
	}
	if !n.leaf() {
		return t.scanWalk(n.Children[n.N], lo, hi, fn)
	}
	return true, nil
}
