package btree

import (
	"math/rand"
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestNodeSizeMatchesPaper(t *testing.T) {
	// Table 3: btree object size 304 B.
	if s := unsafe.Sizeof(node{}); s != 304 {
		t.Fatalf("node size %d, want 304", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

// TestDeepChurn drives the tree through many splits and merges with a
// model check, hitting the borrow-left, borrow-right, and merge paths.
func TestDeepChurn(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint64]uint64)
	// Grow to 3 levels.
	for k := uint64(0); k < 500; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
		model[k] = k
	}
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(600))
		if rng.Intn(2) == 0 {
			ok, err := tr.Remove(k)
			if err != nil {
				t.Fatalf("op %d remove %d: %v", i, k, err)
			}
			if _, want := model[k]; ok != want {
				t.Fatalf("op %d remove %d = %v want %v", i, k, ok, want)
			}
			delete(model, k)
		} else {
			if err := tr.Insert(k, uint64(i)); err != nil {
				t.Fatalf("op %d insert %d: %v", i, k, err)
			}
			model[k] = uint64(i)
		}
	}
	for k := uint64(0); k < 600; k++ {
		v, ok, err := tr.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		wantV, want := model[k]
		if ok != want || (ok && v != wantV) {
			t.Fatalf("key %d: (%d,%v) want (%d,%v)", k, v, ok, wantV, want)
		}
	}
	if n, _ := tr.Len(); n != uint64(len(model)) {
		t.Fatalf("len %d model %d", n, len(model))
	}
}

// TestDrainToEmpty shrinks the root through merges down to nothing.
func TestDrainToEmpty(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for k := uint64(0); k < n; k++ {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < n; k++ {
		ok, err := tr.Remove(k)
		if err != nil || !ok {
			t.Fatalf("remove %d: (%v,%v)", k, ok, err)
		}
	}
	if cnt, _ := tr.Len(); cnt != 0 {
		t.Fatalf("len %d after drain", cnt)
	}
	// Reusable after drain.
	if err := tr.Insert(42, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := tr.Lookup(42); !ok || v != 42 {
		t.Fatal("reuse after drain failed")
	}
}

func TestRangeOrdered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, true)
}
