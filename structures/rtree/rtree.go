// Package rtree implements a persistent radix tree (256-ary trie) over
// uint64 keys, one of the six PMDK data-structure benchmarks (§4.5).
// Nodes are 4136-byte Pangolin objects (Table 3) — the large-object
// workload that stresses micro-buffer copying and checksum costs most
// (Figures 5 and 6).
//
// Keys are consumed a byte at a time, most significant byte first, giving
// a fixed depth of 8; values live in the level-8 leaf nodes. Removal
// prunes empty path nodes.
package rtree

import (
	"github.com/pangolin-go/pangolin"
)

const typeNode = 0x74 // 't'

const fanout = 256

// node is the persistent layout: 256*16 + 8 + 8 + 24 = 4136 bytes.
type node struct {
	Children [fanout]pangolin.OID
	Value    uint64
	Refs     uint64 // live children (internal) — drives pruning
	_        [3]uint64
}

type anchor struct {
	Root  pangolin.OID
	Count uint64
}

// Tree is a handle to a persistent radix tree.
type Tree struct {
	p      *pangolin.Pool
	anchor pangolin.OID
}

// New allocates a fresh tree (root node included).
func New(p *pangolin.Pool) (*Tree, error) {
	var aOID pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		var a *anchor
		aOID, a, err = pangolin.Alloc[anchor](tx, typeNode)
		if err != nil {
			return err
		}
		rOID, _, err := pangolin.Alloc[node](tx, typeNode)
		if err != nil {
			return err
		}
		a.Root = rOID
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: aOID}, nil
}

// Attach reconnects to an existing tree.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*Tree, error) {
	if _, err := p.ObjectSize(anchorOID); err != nil {
		return nil, err
	}
	return &Tree{p: p, anchor: anchorOID}, nil
}

// Anchor returns the tree's persistent anchor OID.
func (t *Tree) Anchor() pangolin.OID { return t.anchor }

// Len returns the number of keys.
func (t *Tree) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// keyByte returns byte d (0 = most significant) of k.
func keyByte(k uint64, d int) byte { return byte(k >> (56 - 8*d)) }

// Field offsets within the node's user data, for ranged updates: a 4 KB
// node changes only one child slot plus its counters per operation.
const (
	offValue = fanout * 16 // Value follows Children
	offRefs  = offValue + 8
)

// openSlot declares child slot b of oid modified and returns the node
// view.
func openSlot(tx *pangolin.Tx, oid pangolin.OID, b byte) (*node, error) {
	if _, err := tx.AddRange(oid, uint64(b)*16, 16); err != nil {
		return nil, err
	}
	data, err := tx.AddRange(oid, offRefs, 8)
	if err != nil {
		return nil, err
	}
	return pangolin.View[node](data)
}

// depth is the trie depth: 8 key bytes, values at the last level's leaf.
const depth = 8

// Lookup finds k with direct reads. It is a pure read (no pool writes,
// no handle state), honoring the kv.Map concurrent-read contract: on a
// ReadView instance it may run concurrently with other Lookups, gated
// against commits by the caller.
func (t *Tree) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for d := 0; d < depth; d++ {
		n, err := pangolin.GetFromPool[node](t.p, cur)
		if err != nil {
			return 0, false, err
		}
		cur = n.Children[keyByte(k, d)]
		if cur.IsNil() {
			return 0, false, nil
		}
	}
	leaf, err := pangolin.GetFromPool[node](t.p, cur)
	if err != nil {
		return 0, false, err
	}
	return leaf.Value, true, nil
}

// LookupTx is Lookup inside the caller's transaction, observing the
// transaction's own uncommitted writes.
func (t *Tree) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, t.anchor)
	if err != nil {
		return 0, false, err
	}
	cur := a.Root
	for d := 0; d < depth; d++ {
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return 0, false, err
		}
		cur = n.Children[keyByte(k, d)]
		if cur.IsNil() {
			return 0, false, nil
		}
	}
	leaf, err := pangolin.Get[node](tx, cur)
	if err != nil {
		return 0, false, err
	}
	if leaf.Refs == 0 {
		return 0, false, nil
	}
	return leaf.Value, true, nil
}

// Insert adds or updates k in one transaction, allocating the missing
// path nodes.
func (t *Tree) Insert(k, v uint64) error {
	return t.p.Run(func(tx *pangolin.Tx) error { return t.InsertTx(tx, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (t *Tree) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	a, err := pangolin.Open[anchor](tx, t.anchor)
	if err != nil {
		return err
	}
	cur := a.Root
	for d := 0; d < depth; d++ {
		b := keyByte(k, d)
		n, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return err
		}
		child := n.Children[b]
		if child.IsNil() {
			childOID, _, err := pangolin.Alloc[node](tx, typeNode)
			if err != nil {
				return err
			}
			wn, err := openSlot(tx, cur, b)
			if err != nil {
				return err
			}
			wn.Children[b] = childOID
			wn.Refs++
			child = childOID
		}
		cur = child
	}
	// Leaf: declare only the value and liveness fields.
	data, err := tx.AddRange(cur, offValue, 16)
	if err != nil {
		return err
	}
	leaf, err := pangolin.View[node](data)
	if err != nil {
		return err
	}
	if leaf.Refs == 0 {
		a.Count++
	}
	leaf.Refs = 1 // leaf liveness marker
	leaf.Value = v
	return nil
}

// Remove deletes k, pruning now-empty path nodes, and reports whether the
// key was present.
func (t *Tree) Remove(k uint64) (bool, error) {
	found := false
	err := t.p.Run(func(tx *pangolin.Tx) error {
		var err error
		found, err = t.RemoveTx(tx, k)
		return err
	})
	return found, err
}

// RemoveTx deletes k inside the caller's transaction, reporting whether it
// was present.
func (t *Tree) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	found := false
	err := func() error {
		a, err := pangolin.Open[anchor](tx, t.anchor)
		if err != nil {
			return err
		}
		// Record the path.
		var path [depth]pangolin.OID
		cur := a.Root
		for d := 0; d < depth; d++ {
			path[d] = cur
			n, err := pangolin.Get[node](tx, cur)
			if err != nil {
				return err
			}
			cur = n.Children[keyByte(k, d)]
			if cur.IsNil() {
				return nil
			}
		}
		leaf, err := pangolin.Get[node](tx, cur)
		if err != nil {
			return err
		}
		if leaf.Refs == 0 {
			return nil
		}
		found = true
		a.Count--
		// Free the leaf and prune upward while nodes empty out.
		victim := cur
		for d := depth - 1; d >= 0; d-- {
			pn, err := openSlot(tx, path[d], keyByte(k, d))
			if err != nil {
				return err
			}
			pn.Children[keyByte(k, d)] = pangolin.NilOID
			pn.Refs--
			if err := tx.Free(victim); err != nil {
				return err
			}
			if pn.Refs > 0 || d == 0 {
				break
			}
			victim = path[d]
		}
		return nil
	}()
	return found, err
}

// Range calls fn for every key/value pair in ascending key order (trie
// children visited byte-ascending), stopping early if fn returns false.
// Reads are direct (pgl_get); do not mutate the tree during iteration.
func (t *Tree) Range(fn func(k, v uint64) bool) error {
	return t.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in ascending key
// order, stopping early if fn returns false. A child at depth d spans
// the fixed key interval [prefix, prefix|mask] (keys are consumed one
// byte per level), so subtrees entirely outside the bounds are pruned
// without being read. It follows the kv.Map iteration contract: a
// mid-scan read fault aborts the walk and returns its error.
func (t *Tree) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](t.p, t.anchor)
	if err != nil {
		return err
	}
	_, err = t.scanWalk(a.Root, 0, 0, lo, hi, fn)
	return err
}

func (t *Tree) scanWalk(oid pangolin.OID, d int, prefix, lo, hi uint64, fn func(k, v uint64) bool) (bool, error) {
	n, err := pangolin.GetFromPool[node](t.p, oid)
	if err != nil {
		return false, err
	}
	if d == depth {
		if n.Refs == 0 {
			return true, nil
		}
		return fn(prefix, n.Value), nil
	}
	// The subtree under child b spans exactly [next, next|mask]: the
	// remaining depth-d-1 … 0 bytes are free below it.
	mask := uint64(1)<<(56-8*d) - 1
	for b := 0; b < fanout; b++ {
		c := n.Children[b]
		if c.IsNil() {
			continue
		}
		next := prefix | uint64(b)<<(56-8*d)
		if next > hi {
			return false, nil // children ascend; nothing further qualifies
		}
		if next|mask < lo {
			continue
		}
		if cont, err := t.scanWalk(c, d+1, next, lo, hi, fn); err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}
