package rtree

import (
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestNodeSizeMatchesPaper(t *testing.T) {
	// Table 3: rtree object size 4136 B.
	if s := unsafe.Sizeof(node{}); s != 4136 {
		t.Fatalf("node size %d, want 4136", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

func TestKeyByte(t *testing.T) {
	k := uint64(0x0102030405060708)
	for d := 0; d < 8; d++ {
		if got := keyByte(k, d); got != byte(d+1) {
			t.Fatalf("keyByte(%d) = %d, want %d", d, got, d+1)
		}
	}
}

// TestPruningFreesPathNodes verifies removal releases the entire private
// path of a key (no storage leak).
func TestPruningFreesPathNodes(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tr, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	baseline := p.Stats().TxAllocObjs.Load()
	_ = baseline
	// Two keys sharing a 7-byte prefix, one fully distinct.
	a := uint64(0x1111111111111100)
	b := uint64(0x1111111111111101)
	c := uint64(0x2222222222222222)
	for _, k := range []uint64{a, b, c} {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// Removing b frees only its leaf (shared path stays).
	if ok, err := tr.Remove(b); err != nil || !ok {
		t.Fatalf("remove b: %v %v", ok, err)
	}
	if v, ok, _ := tr.Lookup(a); !ok || v != a {
		t.Fatal("sibling key lost")
	}
	// Removing c frees its whole private 8-node path.
	if ok, err := tr.Remove(c); err != nil || !ok {
		t.Fatalf("remove c: %v %v", ok, err)
	}
	if ok, err := tr.Remove(a); err != nil || !ok {
		t.Fatalf("remove a: %v %v", ok, err)
	}
	if n, _ := tr.Len(); n != 0 {
		t.Fatalf("len %d", n)
	}
}

func TestRangeOrdered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, true)
}
