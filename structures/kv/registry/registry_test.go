package registry

import (
	"testing"

	"github.com/pangolin-go/pangolin"
)

// TestEveryStructureRoundTrips exercises New/insert/Attach/lookup for each
// registered structure against one pool per structure.
func TestEveryStructureRoundTrips(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			pool, err := pangolin.Create(pangolin.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			defer pool.Close()
			m, err := s.New(pool)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 50; k++ {
				if err := m.Insert(k, k*3); err != nil {
					t.Fatal(err)
				}
			}
			m2, err := s.Attach(pool, m.Anchor())
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(0); k < 50; k++ {
				v, ok, err := m2.Lookup(k)
				if err != nil || !ok || v != k*3 {
					t.Fatalf("key %d = (%d,%v,%v), want (%d,true,nil)", k, v, ok, err, k*3)
				}
			}
		})
	}
}

// TestIDsStable pins the persistent IDs: they live in shard pool roots on
// media, so renumbering them orphans existing data.
func TestIDsStable(t *testing.T) {
	want := map[string]uint64{
		"ctree": 1, "rbtree": 2, "btree": 3, "skiplist": 4, "rtree": 5, "hashmap": 6,
	}
	if len(want) != len(Names()) {
		t.Fatalf("registry has %d structures, test expects %d", len(Names()), len(want))
	}
	for name, id := range want {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.ID != id {
			t.Errorf("%s has ID %d, want %d (IDs are persisted; never renumber)", name, s.ID, id)
		}
		byID, err := ByID(id)
		if err != nil || byID.Name != name {
			t.Errorf("ByID(%d) = %q, %v, want %q", id, byID.Name, err, name)
		}
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName accepted an unknown structure")
	}
	if _, err := ByID(999); err == nil {
		t.Error("ByID accepted an unknown id")
	}
}
