// Package registry names the six persistent key-value structures (§4.5)
// so services can select one at runtime and reattach to it after a pool
// reopen. It lives beside package kv rather than inside it because the
// structures' own tests import kv; a registry inside kv would close an
// import cycle through those test binaries.
//
// Each structure has a stable numeric ID that is stored in persistent pool
// roots (internal/shard writes it), so the IDs here must never be
// renumbered.
package registry

import (
	"fmt"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/btree"
	"github.com/pangolin-go/pangolin/structures/ctree"
	"github.com/pangolin-go/pangolin/structures/hashmap"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/rbtree"
	"github.com/pangolin-go/pangolin/structures/rtree"
	"github.com/pangolin-go/pangolin/structures/skiplist"
)

// Structure describes one registered key-value structure.
type Structure struct {
	ID   uint64 // persisted in pool roots; never renumber
	Name string
	// Ordered reports that Scan visits keys in ascending order (the
	// kv.Map iteration contract); hashmap scans unordered but complete,
	// and scan consumers (internal/shard's chunked merge) select their
	// strategy on this flag.
	Ordered bool
	New     func(*pangolin.Pool) (kv.Map, error)
	Attach  func(*pangolin.Pool, pangolin.OID) (kv.Map, error)
}

// structures lists the six paper structures in Table 3 order.
var structures = []Structure{
	{1, "ctree", true,
		func(p *pangolin.Pool) (kv.Map, error) { return ctree.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return ctree.Attach(p, a) }},
	{2, "rbtree", true,
		func(p *pangolin.Pool) (kv.Map, error) { return rbtree.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return rbtree.Attach(p, a) }},
	{3, "btree", true,
		func(p *pangolin.Pool) (kv.Map, error) { return btree.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return btree.Attach(p, a) }},
	{4, "skiplist", true,
		func(p *pangolin.Pool) (kv.Map, error) { return skiplist.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return skiplist.Attach(p, a) }},
	{5, "rtree", true,
		func(p *pangolin.Pool) (kv.Map, error) { return rtree.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return rtree.Attach(p, a) }},
	{6, "hashmap", false,
		func(p *pangolin.Pool) (kv.Map, error) { return hashmap.New(p) },
		func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return hashmap.Attach(p, a) }},
}

// Names returns the registered structure names in registration order.
func Names() []string {
	names := make([]string, len(structures))
	for i, s := range structures {
		names[i] = s.Name
	}
	return names
}

// ByName looks a structure up by name.
func ByName(name string) (Structure, error) {
	for _, s := range structures {
		if s.Name == name {
			return s, nil
		}
	}
	return Structure{}, fmt.Errorf("kv: unknown structure %q (have %v)", name, Names())
}

// ByID looks a structure up by its persistent ID.
func ByID(id uint64) (Structure, error) {
	for _, s := range structures {
		if s.ID == id {
			return s, nil
		}
	}
	return Structure{}, fmt.Errorf("kv: unknown structure id %d", id)
}
