// Package kv defines the interface shared by the six persistent key-value
// data structures the paper evaluates (§4.5): ctree, rbtree, btree,
// skiplist, rtree, and hashmap. All map uint64 keys to uint64 values and
// store every node as a Pangolin object, so each structure exercises the
// library with its own object sizes and transaction shapes (Table 3).
package kv

import "github.com/pangolin-go/pangolin"

// Map is a persistent uint64 → uint64 key-value store. Implementations
// are safe for use from one goroutine at a time (transactions are
// per-goroutine; see §3.4).
type Map interface {
	// Insert adds or updates a key in one transaction.
	Insert(k, v uint64) error
	// Lookup returns the value for k. Lookups read NVMM directly
	// without micro-buffering (pgl_get).
	Lookup(k uint64) (uint64, bool, error)
	// Remove deletes k, reporting whether it was present.
	Remove(k uint64) (bool, error)
	// Anchor returns the OID of the structure's persistent anchor;
	// passing it to the structure's Attach function reconnects after a
	// pool reopen.
	Anchor() pangolin.OID
}
