// Package kv defines the interface shared by the six persistent key-value
// data structures the paper evaluates (§4.5): ctree, rbtree, btree,
// skiplist, rtree, and hashmap. All map uint64 keys to uint64 values and
// store every node as a Pangolin object, so each structure exercises the
// library with its own object sizes and transaction shapes (Table 3).
package kv

import "github.com/pangolin-go/pangolin"

// Map is a persistent uint64 → uint64 key-value store. Implementations
// are safe for use from one goroutine at a time (transactions are
// per-goroutine; see §3.4), with one carve-out: the concurrent-read
// contract below.
//
// The Tx variants run inside a caller-owned transaction, so a caller can
// group many operations into one commit — one log persist, one fence,
// one parity pass — which is the group-commit lever the serving layer
// uses. Within the transaction, later operations observe earlier ones
// (LookupTx reads the transaction's micro-buffers); nothing is durable
// until the caller commits, and an abort discards every grouped
// operation together.
//
// # Concurrent-read contract
//
// Every implementation's Lookup must be a pure read: no writes to the
// pool, no mutation of the Map handle's own state. That makes a second
// instance of the structure, attached to the pool's ReadView
// (pangolin.Pool.ReadView), safe for concurrent Lookups from any number
// of goroutines, provided the caller excludes transaction commits for
// the duration of each Lookup (internal/shard's per-shard reader gate is
// the canonical provider; a plain RWMutex — readers R-side around each
// Lookup, writers W-side around each transaction — satisfies it too).
// Under that discipline a concurrent Lookup observes either the
// pre-image or the post-image of any in-flight transaction, never a torn
// value: object bytes change only inside commits, and commits are
// excluded. On a ReadView, faults surface as errors (including
// pangolin.ErrReadBusy during freeze windows) instead of triggering
// online recovery; the caller retries via the owner goroutine.
// structures/kvtest's RunConcurrent suite enforces this contract for
// every registered structure.
type Map interface {
	// Insert adds or updates a key in one transaction.
	Insert(k, v uint64) error
	// Lookup returns the value for k. Lookups read NVMM directly
	// without micro-buffering (pgl_get) and follow the concurrent-read
	// contract above.
	Lookup(k uint64) (uint64, bool, error)
	// Remove deletes k, reporting whether it was present.
	Remove(k uint64) (bool, error)
	// InsertTx is Insert inside the caller's transaction. On error the
	// caller must abort tx: the structure may be half-modified.
	InsertTx(tx *pangolin.Tx, k, v uint64) error
	// LookupTx is Lookup inside the caller's transaction, observing the
	// transaction's own uncommitted writes.
	LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error)
	// RemoveTx is Remove inside the caller's transaction. On error the
	// caller must abort tx.
	RemoveTx(tx *pangolin.Tx, k uint64) (bool, error)
	// Anchor returns the OID of the structure's persistent anchor;
	// passing it to the structure's Attach function reconnects after a
	// pool reopen.
	Anchor() pangolin.OID
}
