// Package kv defines the interface shared by the six persistent key-value
// data structures the paper evaluates (§4.5): ctree, rbtree, btree,
// skiplist, rtree, and hashmap. All map uint64 keys to uint64 values and
// store every node as a Pangolin object, so each structure exercises the
// library with its own object sizes and transaction shapes (Table 3).
package kv

import "github.com/pangolin-go/pangolin"

// Map is a persistent uint64 → uint64 key-value store. Implementations
// are safe for use from one goroutine at a time (transactions are
// per-goroutine; see §3.4).
//
// The Tx variants run inside a caller-owned transaction, so a caller can
// group many operations into one commit — one log persist, one fence,
// one parity pass — which is the group-commit lever the serving layer
// uses. Within the transaction, later operations observe earlier ones
// (LookupTx reads the transaction's micro-buffers); nothing is durable
// until the caller commits, and an abort discards every grouped
// operation together.
type Map interface {
	// Insert adds or updates a key in one transaction.
	Insert(k, v uint64) error
	// Lookup returns the value for k. Lookups read NVMM directly
	// without micro-buffering (pgl_get).
	Lookup(k uint64) (uint64, bool, error)
	// Remove deletes k, reporting whether it was present.
	Remove(k uint64) (bool, error)
	// InsertTx is Insert inside the caller's transaction. On error the
	// caller must abort tx: the structure may be half-modified.
	InsertTx(tx *pangolin.Tx, k, v uint64) error
	// LookupTx is Lookup inside the caller's transaction, observing the
	// transaction's own uncommitted writes.
	LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error)
	// RemoveTx is Remove inside the caller's transaction. On error the
	// caller must abort tx.
	RemoveTx(tx *pangolin.Tx, k uint64) (bool, error)
	// Anchor returns the OID of the structure's persistent anchor;
	// passing it to the structure's Attach function reconnects after a
	// pool reopen.
	Anchor() pangolin.OID
}
