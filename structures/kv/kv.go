// Package kv defines the interface shared by the six persistent key-value
// data structures the paper evaluates (§4.5): ctree, rbtree, btree,
// skiplist, rtree, and hashmap. All map uint64 keys to uint64 values and
// store every node as a Pangolin object, so each structure exercises the
// library with its own object sizes and transaction shapes (Table 3).
package kv

import "github.com/pangolin-go/pangolin"

// Map is a persistent uint64 → uint64 key-value store. Implementations
// are safe for use from one goroutine at a time (transactions are
// per-goroutine; see §3.4), with one carve-out: the concurrent-read
// contract below.
//
// The Tx variants run inside a caller-owned transaction, so a caller can
// group many operations into one commit — one log persist, one fence,
// one parity pass — which is the group-commit lever the serving layer
// uses. Within the transaction, later operations observe earlier ones
// (LookupTx reads the transaction's micro-buffers); nothing is durable
// until the caller commits, and an abort discards every grouped
// operation together.
//
// # Concurrent-read contract
//
// Every implementation's Lookup and Scan must be pure reads: no writes
// to the pool, no mutation of the Map handle's own state. That makes a
// second instance of the structure, attached to the pool's ReadView
// (pangolin.Pool.ReadView), safe for concurrent Lookups and Scans from
// any number of goroutines, provided the caller excludes transaction
// commits for the duration of each call (internal/shard's per-shard
// reader gate is the canonical provider; a plain RWMutex — readers
// R-side around each Lookup or Scan, writers W-side around each
// transaction — satisfies it too). Under that discipline a concurrent
// read observes either the pre-image or the post-image of any in-flight
// transaction, never a torn value: object bytes change only inside
// commits, and commits are excluded. On a ReadView, faults surface as
// errors (including pangolin.ErrReadBusy during freeze windows) instead
// of triggering online recovery; the caller retries via the owner
// goroutine. structures/kvtest's RunConcurrent suite enforces this
// contract for every registered structure.
//
// # Iteration contract
//
// Scan visits every pair with lo <= k <= hi (bounds inclusive; an empty
// range when lo > hi), calling fn once per pair until fn returns false
// (early stop, not an error) or the range is exhausted. The five ordered
// structures visit keys in strictly ascending order; hashmap visits them
// in unspecified order but completely. A Scan must NEVER silently drop
// pairs: any read failure mid-iteration aborts the walk and returns that
// error, so a nil error from Scan means fn saw every in-range pair (up
// to an early stop fn itself requested). On a ReadView instance the
// error is typed and retryable — pangolin.ErrReadBusy for freeze
// windows, *pangolin.CorruptionError (or a poison error) for faults that
// need the owner path's online repair — never a partial iteration that
// looks complete. Range is Scan over the full key space.
type Map interface {
	// Insert adds or updates a key in one transaction.
	Insert(k, v uint64) error
	// Lookup returns the value for k. Lookups read NVMM directly
	// without micro-buffering (pgl_get) and follow the concurrent-read
	// contract above.
	Lookup(k uint64) (uint64, bool, error)
	// Scan calls fn for every pair with lo <= k <= hi, following the
	// iteration contract above: ascending for the ordered structures,
	// unordered but complete for hashmap, early-stopping when fn
	// returns false, and surfacing any mid-scan read fault as an error.
	// Scan is a pure read and follows the concurrent-read contract.
	Scan(lo, hi uint64, fn func(k, v uint64) bool) error
	// Remove deletes k, reporting whether it was present.
	Remove(k uint64) (bool, error)
	// InsertTx is Insert inside the caller's transaction. On error the
	// caller must abort tx: the structure may be half-modified.
	InsertTx(tx *pangolin.Tx, k, v uint64) error
	// LookupTx is Lookup inside the caller's transaction, observing the
	// transaction's own uncommitted writes.
	LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error)
	// RemoveTx is Remove inside the caller's transaction. On error the
	// caller must abort tx.
	RemoveTx(tx *pangolin.Tx, k uint64) (bool, error)
	// Anchor returns the OID of the structure's persistent anchor;
	// passing it to the structure's Attach function reconnects after a
	// pool reopen.
	Anchor() pangolin.OID
}
