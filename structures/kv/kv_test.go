// Contract tests for the kv.Map interface: every structure behind the
// registry must satisfy the same single-op and group-commit semantics,
// since the serving layer treats them interchangeably. The structures'
// own packages run the basic conformance suite; this suite exercises the
// registry surface (New/Attach as a service would call them) and the
// batch contract, including crash recovery from a mid-batch image.
package kv_test

import (
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kv/registry"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func harnessFor(s registry.Structure) kvtest.Harness {
	return kvtest.Harness{
		Make:    func(p *pangolin.Pool) (kv.Map, error) { return s.New(p) },
		Attach:  func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) { return s.Attach(p, a) },
		Ordered: s.Ordered,
	}
}

// TestRegistryStructuresScanContract enforces the kv.Map iteration
// contract for every registered structure: inclusive bounds, ascending
// order for the five ordered structures (unordered-but-complete for
// hashmap), early stop, agreement with Range, and typed error
// propagation when a ReadView scan crosses a fault mid-iteration.
func TestRegistryStructuresScanContract(t *testing.T) {
	for _, name := range registry.Names() {
		s, err := registry.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			kvtest.RunScan(t, harnessFor(s), s.Ordered)
		})
	}
}

// TestRegistryStructuresBatchContract runs the group-commit suite over
// all six registered structures.
func TestRegistryStructuresBatchContract(t *testing.T) {
	for _, name := range registry.Names() {
		s, err := registry.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if testing.Short() && name != "hashmap" && name != "btree" {
				t.Skip("short mode: batch contract runs on two representative structures")
			}
			kvtest.RunBatch(t, harnessFor(s))
		})
	}
}

// TestRegistryStructuresCrashSweep sweeps crash points across
// Insert/Update/Remove/batch-commit for every registered structure:
// crash at each persistence point, reopen a random-eviction crash image,
// and require exactly the pre- or post-image plus a clean scrub. All six
// structures run even in -short mode (the sweep is sampled with a
// stride there; nightly visits every point).
func TestRegistryStructuresCrashSweep(t *testing.T) {
	for _, name := range registry.Names() {
		s, err := registry.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			kvtest.RunCrashSweep(t, harnessFor(s))
		})
	}
}

// TestRegistryStructuresConcurrentReads enforces the concurrent-read
// contract for every registered structure: gated readers on a ReadView
// instance observe pre- or post-images of in-flight transactions, never
// torn values or regressed generations, and view faults surface as
// errors instead of triggering repair. Most valuable under -race.
func TestRegistryStructuresConcurrentReads(t *testing.T) {
	for _, name := range registry.Names() {
		s, err := registry.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			kvtest.RunConcurrent(t, harnessFor(s))
		})
	}
}

// TestRegistryStructuresBasicContract runs the core conformance suite
// through the registry's constructors, the exact path services use.
func TestRegistryStructuresBasicContract(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: the structures' own packages cover RunAll")
	}
	for _, name := range registry.Names() {
		s, err := registry.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) { kvtest.RunAll(t, harnessFor(s)) })
	}
}
