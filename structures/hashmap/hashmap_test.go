package hashmap

import (
	"testing"
	"unsafe"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/kv"
	"github.com/pangolin-go/pangolin/structures/kvtest"
)

func TestEntrySizeMatchesPaper(t *testing.T) {
	// Table 3: hashmap entry size 40 B.
	if s := unsafe.Sizeof(entry{}); s != 40 {
		t.Fatalf("entry size %d, want 40", s)
	}
}

func TestConformance(t *testing.T) {
	kvtest.RunAll(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	})
}

// TestGrowth pushes past the load factor so the table rehashes (alloc new
// table, relink all entries, free old) and verifies every key survives.
func TestGrowth(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	const n = InitialBuckets*2 + 500 // crosses the growth threshold
	for k := uint64(0); k < n; k++ {
		if err := m.Insert(k, k^0xA5A5); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	// Table grew.
	a, err := pangolin.GetFromPool[anchor](p, m.anchor)
	if err != nil {
		t.Fatal(err)
	}
	table, err := p.Get(a.Table)
	if err != nil {
		t.Fatal(err)
	}
	if got := uint64(len(table)); got <= tableHeaderSize+InitialBuckets*bucketSize {
		t.Fatalf("table did not grow: %d bytes", got)
	}
	for k := uint64(0); k < n; k++ {
		v, ok, err := m.Lookup(k)
		if err != nil || !ok || v != k^0xA5A5 {
			t.Fatalf("lookup %d after growth: (%d,%v,%v)", k, v, ok, err)
		}
	}
	if cnt, _ := m.Len(); cnt != n {
		t.Fatalf("len %d, want %d", cnt, n)
	}
}

// TestCollisions forces all keys into one bucket path by construction:
// keys that differ only above the bucket-index bits share chains.
func TestCollisions(t *testing.T) {
	p, err := pangolin.Create(pangolin.Config{Mode: pangolin.ModePangolinMLPC})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	m, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	// Just hammer a small keyspace with updates and removals; chain
	// handling shows up regardless of hash spread.
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 64; k++ {
			if err := m.Insert(k, uint64(round)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := uint64(0); k < 64; k++ {
		v, ok, _ := m.Lookup(k)
		if !ok || v != 2 {
			t.Fatalf("key %d = (%d,%v)", k, v, ok)
		}
	}
	for k := uint64(0); k < 64; k += 2 {
		if ok, err := m.Remove(k); err != nil || !ok {
			t.Fatalf("remove %d: %v %v", k, ok, err)
		}
	}
	for k := uint64(0); k < 64; k++ {
		_, ok, _ := m.Lookup(k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("key %d present=%v", k, ok)
		}
	}
}

func TestRangeUnordered(t *testing.T) {
	kvtest.RunRange(t, kvtest.Harness{
		Make: func(p *pangolin.Pool) (kv.Map, error) { return New(p) },
		Attach: func(p *pangolin.Pool, a pangolin.OID) (kv.Map, error) {
			return Attach(p, a)
		},
	}, false)
}
