// Package hashmap implements a persistent chained hash table over uint64
// keys, one of the six PMDK data-structure benchmarks (§4.5). It has two
// object kinds, like the paper's hashmap (Table 3): a large bucket-array
// table object (10 MB at paper scale; smaller here and grown by
// rehashing) and 40-byte chain entries.
//
// Bucket-pointer updates modify 16 bytes of the multi-kilobyte table
// object via AddRange — the workload where Pangolin's incremental
// checksums and range-limited logging matter most (§3.5).
package hashmap

import (
	"encoding/binary"

	"github.com/pangolin-go/pangolin"
)

const (
	typeTable = 0x68 // 'h'
	typeEntry = 0x65 // 'e'
)

// entry is the persistent chain node: 40 bytes (Table 3).
type entry struct {
	Next  pangolin.OID
	Key   uint64
	Value uint64
	_     uint64
}

// tableHeader precedes the bucket array inside the table object.
type tableHeader struct {
	NBuckets uint64
	_        uint64
}

const tableHeaderSize = 16
const bucketSize = 16 // one OID

type anchor struct {
	Table pangolin.OID
	Count uint64
}

// Map is a handle to a persistent hash map.
type Map struct {
	p      *pangolin.Pool
	anchor pangolin.OID
}

// InitialBuckets is the bucket count of a fresh table. The paper's table
// object is 10 MB; the default here is laptop-scale and grows by
// rehashing at load factor 2.
const InitialBuckets = 1024

// New allocates a fresh map with InitialBuckets buckets.
func New(p *pangolin.Pool) (*Map, error) { return NewWithBuckets(p, InitialBuckets) }

// NewWithBuckets allocates a fresh map with a chosen initial bucket count
// (benchmarks pre-size the table the way the paper's 10 MB table does, so
// the insert path is not dominated by rehashing).
func NewWithBuckets(p *pangolin.Pool, buckets uint64) (*Map, error) {
	var aOID pangolin.OID
	err := p.Run(func(tx *pangolin.Tx) error {
		var err error
		var a *anchor
		aOID, a, err = pangolin.Alloc[anchor](tx, typeTable)
		if err != nil {
			return err
		}
		tOID, err := allocTable(tx, buckets)
		if err != nil {
			return err
		}
		a.Table = tOID
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Map{p: p, anchor: aOID}, nil
}

func allocTable(tx *pangolin.Tx, buckets uint64) (pangolin.OID, error) {
	size := tableHeaderSize + buckets*bucketSize
	oid, data, err := tx.Alloc(size, typeTable)
	if err != nil {
		return pangolin.NilOID, err
	}
	binary.LittleEndian.PutUint64(data[0:], buckets)
	return oid, nil
}

// Attach reconnects to an existing map.
func Attach(p *pangolin.Pool, anchorOID pangolin.OID) (*Map, error) {
	if _, err := p.ObjectSize(anchorOID); err != nil {
		return nil, err
	}
	return &Map{p: p, anchor: anchorOID}, nil
}

// Anchor returns the map's persistent anchor OID.
func (m *Map) Anchor() pangolin.OID { return m.anchor }

// Len returns the number of keys.
func (m *Map) Len() (uint64, error) {
	a, err := pangolin.GetFromPool[anchor](m.p, m.anchor)
	if err != nil {
		return 0, err
	}
	return a.Count, nil
}

// hash is Fibonacci hashing over the key.
func hash(k uint64) uint64 { return k * 0x9E3779B97F4A7C15 }

// bucketOID reads bucket i of a table image.
func bucketOID(table []byte, i uint64) pangolin.OID {
	off := tableHeaderSize + i*bucketSize
	return pangolin.OID{
		Pool: binary.LittleEndian.Uint64(table[off:]),
		Off:  binary.LittleEndian.Uint64(table[off+8:]),
	}
}

func putBucketOID(table []byte, i uint64, oid pangolin.OID) {
	off := tableHeaderSize + i*bucketSize
	binary.LittleEndian.PutUint64(table[off:], oid.Pool)
	binary.LittleEndian.PutUint64(table[off+8:], oid.Off)
}

// Lookup finds k with direct reads. It is a pure read (no pool writes,
// no handle state), honoring the kv.Map concurrent-read contract: on a
// ReadView instance it may run concurrently with other Lookups, gated
// against commits by the caller.
func (m *Map) Lookup(k uint64) (uint64, bool, error) {
	a, err := pangolin.GetFromPool[anchor](m.p, m.anchor)
	if err != nil {
		return 0, false, err
	}
	table, err := m.p.Get(a.Table)
	if err != nil {
		return 0, false, err
	}
	n := binary.LittleEndian.Uint64(table[0:])
	cur := bucketOID(table, hash(k)%n)
	for !cur.IsNil() {
		e, err := pangolin.GetFromPool[entry](m.p, cur)
		if err != nil {
			return 0, false, err
		}
		if e.Key == k {
			return e.Value, true, nil
		}
		cur = e.Next
	}
	return 0, false, nil
}

// LookupTx is Lookup inside the caller's transaction: the table and chain
// reads come from the transaction's micro-buffers when open, so the
// caller's own uncommitted inserts and removes are visible.
func (m *Map) LookupTx(tx *pangolin.Tx, k uint64) (uint64, bool, error) {
	a, err := pangolin.Get[anchor](tx, m.anchor)
	if err != nil {
		return 0, false, err
	}
	table, err := tx.Get(a.Table)
	if err != nil {
		return 0, false, err
	}
	n := binary.LittleEndian.Uint64(table[0:])
	cur := bucketOID(table, hash(k)%n)
	for !cur.IsNil() {
		e, err := pangolin.Get[entry](tx, cur)
		if err != nil {
			return 0, false, err
		}
		if e.Key == k {
			return e.Value, true, nil
		}
		cur = e.Next
	}
	return 0, false, nil
}

// Insert adds or updates k in one transaction, growing the table at load
// factor 2.
func (m *Map) Insert(k, v uint64) error {
	return m.p.Run(func(tx *pangolin.Tx) error { return m.InsertTx(tx, k, v) })
}

// InsertTx adds or updates k inside the caller's transaction.
func (m *Map) InsertTx(tx *pangolin.Tx, k, v uint64) error {
	a, err := pangolin.Open[anchor](tx, m.anchor)
	if err != nil {
		return err
	}
	table, err := tx.Get(a.Table)
	if err != nil {
		return err
	}
	n := binary.LittleEndian.Uint64(table[0:])
	idx := hash(k) % n
	// Chain scan.
	cur := bucketOID(table, idx)
	for !cur.IsNil() {
		e, err := pangolin.Get[entry](tx, cur)
		if err != nil {
			return err
		}
		if e.Key == k {
			we, err := pangolin.Open[entry](tx, cur)
			if err != nil {
				return err
			}
			we.Value = v
			return nil
		}
		cur = e.Next
	}
	// New entry at the chain head; only 16 bytes of the table
	// object are declared modified.
	eOID, e, err := pangolin.Alloc[entry](tx, typeEntry)
	if err != nil {
		return err
	}
	e.Key, e.Value = k, v
	e.Next = bucketOID(table, idx)
	wTable, err := tx.AddRange(a.Table, tableHeaderSize+idx*bucketSize, bucketSize)
	if err != nil {
		return err
	}
	putBucketOID(wTable, idx, eOID)
	a.Count++
	if a.Count > 2*n {
		return m.grow(tx, a, n*2)
	}
	return nil
}

// grow rehashes into a table of newBuckets buckets within the caller's
// transaction: allocate, relink every entry, free the old table.
func (m *Map) grow(tx *pangolin.Tx, a *anchor, newBuckets uint64) error {
	oldTable, err := tx.Get(a.Table)
	if err != nil {
		return err
	}
	oldN := binary.LittleEndian.Uint64(oldTable[0:])
	newOID, err := allocTable(tx, newBuckets)
	if err != nil {
		return err
	}
	newTable, err := tx.AddRange(newOID, 0, tableHeaderSize+newBuckets*bucketSize)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(newTable[0:], newBuckets)
	for i := uint64(0); i < oldN; i++ {
		cur := bucketOID(oldTable, i)
		for !cur.IsNil() {
			e, err := pangolin.Open[entry](tx, cur)
			if err != nil {
				return err
			}
			next := e.Next
			idx := hash(e.Key) % newBuckets
			e.Next = bucketOID(newTable, idx)
			putBucketOID(newTable, idx, cur)
			cur = next
		}
	}
	old := a.Table
	a.Table = newOID
	return tx.Free(old)
}

// Remove deletes k, reporting whether it was present.
func (m *Map) Remove(k uint64) (bool, error) {
	found := false
	err := m.p.Run(func(tx *pangolin.Tx) error {
		var err error
		found, err = m.RemoveTx(tx, k)
		return err
	})
	return found, err
}

// RemoveTx deletes k inside the caller's transaction.
func (m *Map) RemoveTx(tx *pangolin.Tx, k uint64) (bool, error) {
	a, err := pangolin.Open[anchor](tx, m.anchor)
	if err != nil {
		return false, err
	}
	table, err := tx.Get(a.Table)
	if err != nil {
		return false, err
	}
	n := binary.LittleEndian.Uint64(table[0:])
	idx := hash(k) % n
	prev := pangolin.NilOID
	cur := bucketOID(table, idx)
	for !cur.IsNil() {
		e, err := pangolin.Get[entry](tx, cur)
		if err != nil {
			return false, err
		}
		if e.Key == k {
			next := e.Next
			if prev.IsNil() {
				wTable, err := tx.AddRange(a.Table, tableHeaderSize+idx*bucketSize, bucketSize)
				if err != nil {
					return false, err
				}
				putBucketOID(wTable, idx, next)
			} else {
				wp, err := pangolin.Open[entry](tx, prev)
				if err != nil {
					return false, err
				}
				wp.Next = next
			}
			a.Count--
			return true, tx.Free(cur)
		}
		prev, cur = cur, e.Next
	}
	return false, nil
}

// Range calls fn for every key/value pair in unspecified order, stopping
// early if fn returns false. Reads are direct (pgl_get); do not mutate
// the map during iteration.
func (m *Map) Range(fn func(k, v uint64) bool) error {
	return m.Scan(0, ^uint64(0), fn)
}

// Scan calls fn for every pair with lo <= k <= hi in unspecified order
// (hash order gives no cheaper option than enumerating every chain and
// filtering), stopping early if fn returns false. It is complete: every
// in-range pair is visited unless fn stops early. It follows the kv.Map
// iteration contract: a mid-scan read fault aborts the walk and returns
// its error.
func (m *Map) Scan(lo, hi uint64, fn func(k, v uint64) bool) error {
	if lo > hi {
		return nil
	}
	a, err := pangolin.GetFromPool[anchor](m.p, m.anchor)
	if err != nil {
		return err
	}
	table, err := m.p.Get(a.Table)
	if err != nil {
		return err
	}
	n := binary.LittleEndian.Uint64(table[0:])
	for i := uint64(0); i < n; i++ {
		cur := bucketOID(table, i)
		for !cur.IsNil() {
			e, err := pangolin.GetFromPool[entry](m.p, cur)
			if err != nil {
				return err
			}
			if e.Key >= lo && e.Key <= hi {
				if !fn(e.Key, e.Value) {
					return nil
				}
			}
			cur = e.Next
		}
	}
	return nil
}
