package pangolin

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// PoolSet manages a family of sibling pools ("shards") that persist as one
// snapshot file per shard inside a directory. Sharding is Pangolin's
// scaling mechanism for concurrent services: transactions are
// per-goroutine and two concurrent transactions must not touch the same
// object (§3.4), so a service that wants parallel commits partitions its
// data across independent pools and gives each pool a single owner
// goroutine. internal/shard builds that worker layer; PoolSet supplies the
// storage substrate: create/open/close of the whole set and
// snapshot-per-shard durability.
//
// Shard files are named shard-0000.pgl, shard-0001.pgl, … so a set's
// directory is self-describing: OpenPoolSet discovers the shard count from
// the files present.
//
// A set may be SPARSE: in a mixed-backend service (internal/store) only
// some shard indices are Pangolin pools — the rest belong to other
// engines that keep their own files in the same directory — so
// NewPoolSetShards/OpenPoolSetShards populate just those indices and
// leave nil holes. Len still reports the full set size; Shards lists the
// populated indices; the per-index operations must only be called on
// populated slots.
type PoolSet struct {
	dir   string
	pools []*Pool
}

// ShardFile returns the snapshot path of shard i within dir.
func ShardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.pgl", i))
}

// NewPoolSet creates n fresh pools for dir (created if missing) without
// writing any shard files: the set is not durable until Save. It refuses
// to overwrite an existing set. Callers that initialize pool contents
// right after creation (as internal/shard does with its roots) use this to
// pay for one snapshot write instead of two.
func NewPoolSet(dir string, n int, cfg Config) (*PoolSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pangolin: pool set needs at least 1 shard, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	if existing, err := shardFiles(dir); err != nil {
		return nil, err
	} else if len(existing) > 0 {
		return nil, fmt.Errorf("pangolin: pool set already exists in %s (%d shard files)", dir, len(existing))
	}
	return NewPoolSetShards(dir, n, allIndices(n), cfg)
}

// NewPoolSetShards is NewPoolSet for a sparse set: it creates fresh
// pools only at the given indices of an n-shard set, leaving the other
// slots nil for a different engine's shards. Not durable until Save; it
// refuses to overwrite existing shard files at the requested indices.
func NewPoolSetShards(dir string, n int, indices []int, cfg Config) (*PoolSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pangolin: pool set needs at least 1 shard, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	s := &PoolSet{dir: dir, pools: make([]*Pool, n)}
	for _, i := range indices {
		if i < 0 || i >= n {
			s.Close()
			return nil, fmt.Errorf("pangolin: shard index %d out of range [0,%d)", i, n)
		}
		if s.pools[i] != nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: duplicate shard index %d", i)
		}
		if _, err := os.Stat(ShardFile(dir, i)); err == nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: shard file %s already exists", ShardFile(dir, i))
		}
		p, err := Create(cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: create shard %d: %w", i, err)
		}
		s.pools[i] = p
	}
	return s, nil
}

func allIndices(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// CreatePoolSet is NewPoolSet followed by Save: the returned set is
// immediately durable.
func CreatePoolSet(dir string, n int, cfg Config) (*PoolSet, error) {
	s, err := NewPoolSet(dir, n, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Save(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenPoolSet opens every shard file in dir, running crash recovery on
// each pool. The shard count comes from the files present; they must be
// contiguously numbered from zero.
func OpenPoolSet(dir string, cfg Config) (*PoolSet, error) {
	files, err := shardFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("pangolin: no shard files in %s", dir)
	}
	for i := range files {
		if want := ShardFile(dir, i); files[i] != want {
			return nil, fmt.Errorf("pangolin: shard files not contiguous: have %s, want %s", files[i], want)
		}
	}
	return OpenPoolSetShards(dir, len(files), allIndices(len(files)), cfg)
}

// OpenPoolSetShards is OpenPoolSet for a sparse set: it opens the shard
// files at the given indices of an n-shard set (running crash recovery
// on each) and leaves the other slots nil. The caller supplies the set
// size and membership — in a mixed-backend directory the other indices
// belong to other engines, so there is no file count to discover it
// from.
func OpenPoolSetShards(dir string, n int, indices []int, cfg Config) (*PoolSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pangolin: pool set needs at least 1 shard, got %d", n)
	}
	s := &PoolSet{dir: dir, pools: make([]*Pool, n)}
	for _, i := range indices {
		if i < 0 || i >= n {
			s.Close()
			return nil, fmt.Errorf("pangolin: shard index %d out of range [0,%d)", i, n)
		}
		p, err := LoadFile(ShardFile(dir, i), cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: open shard %d: %w", i, err)
		}
		s.pools[i] = p
	}
	return s, nil
}

func shardFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.pgl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// Len returns the number of shards in the set, populated or not.
func (s *PoolSet) Len() int { return len(s.pools) }

// Shards returns the populated shard indices in ascending order (all of
// [0,Len) for a dense set).
func (s *PoolSet) Shards() []int {
	idx := make([]int, 0, len(s.pools))
	for i, p := range s.pools {
		if p != nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// Pool returns shard i's pool (nil for an unpopulated index of a sparse
// set).
func (s *PoolSet) Pool(i int) *Pool { return s.pools[i] }

// Dir returns the set's directory.
func (s *PoolSet) Dir() string { return s.dir }

// SaveShard persists shard i to its snapshot file. The shard must have no
// transaction in flight; in a sharded service, call from the shard's owner
// goroutine.
func (s *PoolSet) SaveShard(i int) error {
	return s.pools[i].SaveFile(ShardFile(s.dir, i))
}

// Save persists every populated shard. No transactions may be in flight
// on any shard. Shards save concurrently — each snapshot write touches
// only its own shard's device and file — and the first error (by shard
// index) wins; later shards still run to completion, so a failure never
// leaves saves silently unattempted.
func (s *PoolSet) Save() error {
	return s.eachShard(func(i int) error {
		if err := s.SaveShard(i); err != nil {
			return fmt.Errorf("pangolin: save shard %d: %w", i, err)
		}
		return nil
	})
}

// eachShard runs fn(i) for every populated shard concurrently and
// returns the lowest-indexed shard's error, keeping the verdict
// deterministic where "first error wins" on racing goroutines is not.
func (s *PoolSet) eachShard(fn func(i int) error) error {
	errs := make([]error, len(s.pools))
	var wg sync.WaitGroup
	for i, p := range s.pools {
		if p == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// CrashSaveShard simulates a power failure on shard i: it writes a crash
// image of the shard's device — unpersisted cache lines treated per mode —
// to the shard file, without disturbing the live pool. Reopening the file
// runs crash recovery, exactly as a machine restart would.
func (s *PoolSet) CrashSaveShard(i int, mode CrashMode, seed int64) error {
	img := s.pools[i].Device().CrashCopy(mode, seed)
	return img.SaveFile(ShardFile(s.dir, i))
}

// CrashSave simulates a whole-machine power failure: every populated
// shard file is replaced by a crash image of its device, the images
// written concurrently (first error by shard index wins). Each shard's
// image derives from seed+index regardless of scheduling, so a given
// seed reproduces the same crash state as the old sequential loop.
func (s *PoolSet) CrashSave(mode CrashMode, seed int64) error {
	return s.eachShard(func(i int) error {
		if err := s.CrashSaveShard(i, mode, seed+int64(i)); err != nil {
			return fmt.Errorf("pangolin: crash-save shard %d: %w", i, err)
		}
		return nil
	})
}

// Scrub runs a scrubbing pass over every populated shard, returning one
// report per shard (zero reports for unpopulated indices). No
// transactions may be in flight. Each shard's pass runs as a sequence
// of bounded incremental steps (see Pool.Scrub).
func (s *PoolSet) Scrub() ([]ScrubReport, error) {
	reports := make([]ScrubReport, len(s.pools))
	for i, p := range s.pools {
		if p == nil {
			continue
		}
		rep, err := p.Scrub()
		if err != nil {
			return reports, fmt.Errorf("pangolin: scrub shard %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}

// ScrubStep advances shard i's built-in incremental scrubber by one
// bounded step; see Pool.ScrubStep. In a sharded service, call from the
// shard's owner goroutine (internal/shard's maintenance scheduler does).
func (s *PoolSet) ScrubStep(i int) (ScrubReport, bool, error) {
	return s.pools[i].ScrubStep()
}

// Close shuts every shard pool down without saving. Call Save first for a
// clean shutdown; skip it to model a crash.
func (s *PoolSet) Close() {
	for _, p := range s.pools {
		if p != nil {
			p.Close()
		}
	}
	s.pools = nil
}
