package pangolin

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// PoolSet manages a family of sibling pools ("shards") that persist as one
// snapshot file per shard inside a directory. Sharding is Pangolin's
// scaling mechanism for concurrent services: transactions are
// per-goroutine and two concurrent transactions must not touch the same
// object (§3.4), so a service that wants parallel commits partitions its
// data across independent pools and gives each pool a single owner
// goroutine. internal/shard builds that worker layer; PoolSet supplies the
// storage substrate: create/open/close of the whole set and
// snapshot-per-shard durability.
//
// Shard files are named shard-0000.pgl, shard-0001.pgl, … so a set's
// directory is self-describing: OpenPoolSet discovers the shard count from
// the files present.
type PoolSet struct {
	dir   string
	pools []*Pool
}

// ShardFile returns the snapshot path of shard i within dir.
func ShardFile(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d.pgl", i))
}

// NewPoolSet creates n fresh pools for dir (created if missing) without
// writing any shard files: the set is not durable until Save. It refuses
// to overwrite an existing set. Callers that initialize pool contents
// right after creation (as internal/shard does with its roots) use this to
// pay for one snapshot write instead of two.
func NewPoolSet(dir string, n int, cfg Config) (*PoolSet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pangolin: pool set needs at least 1 shard, got %d", n)
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	if existing, err := shardFiles(dir); err != nil {
		return nil, err
	} else if len(existing) > 0 {
		return nil, fmt.Errorf("pangolin: pool set already exists in %s (%d shard files)", dir, len(existing))
	}
	s := &PoolSet{dir: dir, pools: make([]*Pool, 0, n)}
	for i := 0; i < n; i++ {
		p, err := Create(cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: create shard %d: %w", i, err)
		}
		s.pools = append(s.pools, p)
	}
	return s, nil
}

// CreatePoolSet is NewPoolSet followed by Save: the returned set is
// immediately durable.
func CreatePoolSet(dir string, n int, cfg Config) (*PoolSet, error) {
	s, err := NewPoolSet(dir, n, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Save(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// OpenPoolSet opens every shard file in dir, running crash recovery on
// each pool. The shard count comes from the files present; they must be
// contiguously numbered from zero.
func OpenPoolSet(dir string, cfg Config) (*PoolSet, error) {
	files, err := shardFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("pangolin: no shard files in %s", dir)
	}
	s := &PoolSet{dir: dir}
	for i := range files {
		want := ShardFile(dir, i)
		if files[i] != want {
			s.Close()
			return nil, fmt.Errorf("pangolin: shard files not contiguous: have %s, want %s", files[i], want)
		}
		p, err := LoadFile(want, cfg)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pangolin: open shard %d: %w", i, err)
		}
		s.pools = append(s.pools, p)
	}
	return s, nil
}

func shardFiles(dir string) ([]string, error) {
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.pgl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(files)
	return files, nil
}

// Len returns the number of shards.
func (s *PoolSet) Len() int { return len(s.pools) }

// Pool returns shard i's pool.
func (s *PoolSet) Pool(i int) *Pool { return s.pools[i] }

// Dir returns the set's directory.
func (s *PoolSet) Dir() string { return s.dir }

// SaveShard persists shard i to its snapshot file. The shard must have no
// transaction in flight; in a sharded service, call from the shard's owner
// goroutine.
func (s *PoolSet) SaveShard(i int) error {
	return s.pools[i].SaveFile(ShardFile(s.dir, i))
}

// Save persists every shard. No transactions may be in flight on any
// shard.
func (s *PoolSet) Save() error {
	for i := range s.pools {
		if err := s.SaveShard(i); err != nil {
			return fmt.Errorf("pangolin: save shard %d: %w", i, err)
		}
	}
	return nil
}

// CrashSaveShard simulates a power failure on shard i: it writes a crash
// image of the shard's device — unpersisted cache lines treated per mode —
// to the shard file, without disturbing the live pool. Reopening the file
// runs crash recovery, exactly as a machine restart would.
func (s *PoolSet) CrashSaveShard(i int, mode CrashMode, seed int64) error {
	img := s.pools[i].Device().CrashCopy(mode, seed)
	return img.SaveFile(ShardFile(s.dir, i))
}

// CrashSave simulates a whole-machine power failure: every shard file is
// replaced by a crash image of its device. Distinct seeds per shard keep
// the eviction outcomes independent.
func (s *PoolSet) CrashSave(mode CrashMode, seed int64) error {
	for i := range s.pools {
		if err := s.CrashSaveShard(i, mode, seed+int64(i)); err != nil {
			return fmt.Errorf("pangolin: crash-save shard %d: %w", i, err)
		}
	}
	return nil
}

// Scrub runs a scrubbing pass over every shard, returning one report per
// shard. No transactions may be in flight. Each shard's pass runs as a
// sequence of bounded incremental steps (see Pool.Scrub).
func (s *PoolSet) Scrub() ([]ScrubReport, error) {
	reports := make([]ScrubReport, len(s.pools))
	for i, p := range s.pools {
		rep, err := p.Scrub()
		if err != nil {
			return reports, fmt.Errorf("pangolin: scrub shard %d: %w", i, err)
		}
		reports[i] = rep
	}
	return reports, nil
}

// ScrubStep advances shard i's built-in incremental scrubber by one
// bounded step; see Pool.ScrubStep. In a sharded service, call from the
// shard's owner goroutine (internal/shard's maintenance scheduler does).
func (s *PoolSet) ScrubStep(i int) (ScrubReport, bool, error) {
	return s.pools[i].ScrubStep()
}

// Close shuts every shard pool down without saving. Call Save first for a
// clean shutdown; skip it to model a crash.
func (s *PoolSet) Close() {
	for _, p := range s.pools {
		if p != nil {
			p.Close()
		}
	}
	s.pools = nil
}
