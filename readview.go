package pangolin

import (
	"errors"
	"sync"
	"sync/atomic"

	"github.com/pangolin-go/pangolin/internal/core"
	"github.com/pangolin-go/pangolin/internal/nvm"
)

// ErrReadBusy reports that a read-view Get could not proceed because the
// pool is frozen (or freezing) for online recovery or scrubbing. Retry
// the read through the pool's owner goroutine, whose repairing path
// waits the freeze out.
var ErrReadBusy = core.ErrReadBusy

// CorruptionError reports object corruption — a checksum mismatch or an
// implausible header — that the current read path could not (ReadView)
// or cannot (owner path after retries) repair. On a ReadView it is
// retryable: route the read through the pool's owner goroutine, whose
// repairing path runs online recovery.
type CorruptionError = core.CorruptionError

// IsCorruption reports whether err carries a CorruptionError, the typed
// "object failed verification" condition a ReadView caller resolves by
// retrying through the owner path (as opposed to ErrReadBusy, which is a
// transient freeze window).
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// PoisonError reports a load from a poisoned page — an uncorrectable
// media error, the SIGBUS analog. On a ReadView it is retryable exactly
// like a CorruptionError: the owner path's repairing read rebuilds the
// page from parity.
type PoisonError = nvm.PoisonError

// IsPoison reports whether err carries a PoisonError.
func IsPoison(err error) bool {
	var pe *PoisonError
	return errors.As(err, &pe)
}

// readViewState is the per-view verified-object cache. Pangolin's
// headline read design (§3.3) has readers verify per-object checksums
// straight from NVMM; verifying every object on every traversal would
// make hot objects cost O(object) per read, so the view remembers which
// objects it verified at which commit epoch and consults the engine's
// per-object modification clock: a cached verification stays valid
// until a commit actually writes that object (hash collisions in the
// clock only force redundant re-verification). Object bytes only change
// inside commits — the view requires the caller's writer exclusion — so
// an unmodified object needs no second verification. Scribbles that
// land after a verification are windowed exactly like the default
// verify policy: the next modification or scrub pass catches them.
type readViewState struct {
	verified sync.Map // OID → uint64 commit epoch of last verification
	stores   atomic.Uint64
}

// vcacheClearEvery bounds cache DRAM: after this many insertions the map
// is dropped wholesale (entries for freed OIDs would otherwise accrete
// forever in a churning pool). Re-verification after a clear is the same
// cost as after any commit.
const vcacheClearEvery = 1 << 20

// ReadView returns a read-only handle onto the same pool for concurrent
// verified reads. Get (and GetFromPool, and any structure Lookup running
// against the view) executes on the caller's goroutine, verifies object
// checksums — cached per commit epoch — and never mutates the pool:
// media faults and checksum mismatches return their errors instead of
// triggering online recovery, and freeze windows return ErrReadBusy.
//
// Concurrency contract: any number of goroutines may read through the
// view simultaneously, and view reads may overlap Scrub and online
// recovery (they bounce with ErrReadBusy rather than racing repairs).
// The caller must guarantee no transaction is in its commit while a view
// read runs — internal/shard's per-shard reader gate is the canonical
// provider — and must route failed view reads through the pool's owner
// goroutine, whose Get repairs online.
//
// Only Get/ObjectSize/ObjectType-style reads are meaningful on a view;
// transactional methods still work but follow the owner-path rules.
func (p *Pool) ReadView() *Pool {
	return &Pool{e: p.e, rv: &readViewState{}, scrubCfg: p.scrubCfg}
}

// IsReadView reports whether this handle is a concurrent read view.
func (p *Pool) IsReadView() bool { return p.rv != nil }

// getRO serves Pool.Get on a read view.
func (rv *readViewState) getRO(e *core.Engine, oid OID) ([]byte, error) {
	// A verification performed at epoch E stays valid while no later
	// commit modified the object: E >= ModEpoch(oid). Sample the current
	// epoch before reading — no commit may run concurrently, per the
	// contract, so the bytes read are the bytes of this epoch.
	epoch := e.CommitEpoch()
	skip := false
	if v, ok := rv.verified.Load(oid); ok && v.(uint64) >= e.ModEpoch(oid) {
		skip = true
	}
	data, err := e.GetRO(oid, skip)
	if err != nil {
		return nil, err
	}
	if !skip && e.Mode().Checksums() {
		if rv.stores.Add(1)%vcacheClearEvery == 0 {
			rv.verified.Clear()
		}
		rv.verified.Store(oid, epoch)
	}
	return data, nil
}

// ReadBusy reports whether err is the transient "pool frozen or
// freezing" condition that a read-view caller should resolve by routing
// the read through the pool's owner goroutine.
func ReadBusy(err error) bool { return errors.Is(err, ErrReadBusy) }
