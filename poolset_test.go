package pangolin_test

import (
	"os"
	"testing"

	"github.com/pangolin-go/pangolin"
)

// TestPoolSetLifecycle covers create → write → save → close → open with
// data in distinct pools, plus the guard against overwriting a set.
func TestPoolSetLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := pangolin.DefaultConfig()
	s, err := pangolin.CreatePoolSet(dir, 3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	type root struct{ Value uint64 }
	for i := 0; i < s.Len(); i++ {
		p := s.Pool(i)
		oid, err := pangolin.Root[root](p, 7)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		if err := p.Run(func(tx *pangolin.Tx) error {
			r, err := pangolin.Open[root](tx, oid)
			if err != nil {
				return err
			}
			r.Value = 100 + uint64(i)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	if _, err := pangolin.CreatePoolSet(dir, 2, cfg); err == nil {
		t.Fatal("CreatePoolSet overwrote an existing set")
	}

	s2, err := pangolin.OpenPoolSet(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	for i := 0; i < s2.Len(); i++ {
		p := s2.Pool(i)
		oid, err := pangolin.Root[root](p, 7)
		if err != nil {
			t.Fatal(err)
		}
		r, err := pangolin.GetFromPool[root](p, oid)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != 100+uint64(i) {
			t.Fatalf("pool %d root = %d, want %d", i, r.Value, 100+uint64(i))
		}
	}
	if reports, err := s2.Scrub(); err != nil {
		t.Fatal(err)
	} else if len(reports) != 3 {
		t.Fatalf("scrub returned %d reports, want 3", len(reports))
	}
}

// TestPoolSetCrashSave: crash images must reopen through recovery and keep
// committed data.
func TestPoolSetCrashSave(t *testing.T) {
	dir := t.TempDir()
	cfg := pangolin.DefaultConfig()
	s, err := pangolin.CreatePoolSet(dir, 2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	type root struct{ Value uint64 }
	oids := make([]pangolin.OID, s.Len())
	for i := 0; i < s.Len(); i++ {
		p := s.Pool(i)
		oids[i], err = pangolin.Root[root](p, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Run(func(tx *pangolin.Tx) error {
			r, err := pangolin.Open[root](tx, oids[i])
			if err != nil {
				return err
			}
			r.Value = 4242
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CrashSave(pangolin.CrashEvictRandom, 99); err != nil {
		t.Fatal(err)
	}
	s.Close() // no Save: the crash images must stand on their own

	s2, err := pangolin.OpenPoolSet(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < s2.Len(); i++ {
		r, err := pangolin.GetFromPool[root](s2.Pool(i), oids[i])
		if err != nil {
			t.Fatal(err)
		}
		if r.Value != 4242 {
			t.Fatalf("pool %d lost committed root value: %d", i, r.Value)
		}
	}
}

// TestOpenPoolSetErrors: empty and gapped directories are rejected.
func TestOpenPoolSetErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := pangolin.OpenPoolSet(dir, pangolin.DefaultConfig()); err == nil {
		t.Fatal("OpenPoolSet accepted an empty directory")
	}
	s, err := pangolin.CreatePoolSet(dir, 2, pangolin.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.Remove(pangolin.ShardFile(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := pangolin.OpenPoolSet(dir, pangolin.DefaultConfig()); err == nil {
		t.Fatal("OpenPoolSet accepted a directory with a missing shard")
	}
}
