module github.com/pangolin-go/pangolin

go 1.24

require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
