module github.com/pangolin-go/pangolin

go 1.24
