// Benchmarks regenerating the paper's evaluation (§4) under testing.B.
// One benchmark family exists per figure and table; cmd/pglbench prints
// the same experiments as formatted rows at larger scales. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
package pangolin_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/internal/bench"
	"github.com/pangolin-go/pangolin/internal/csum"
	"github.com/pangolin-go/pangolin/internal/layout"
	"github.com/pangolin-go/pangolin/internal/nvm"
	"github.com/pangolin-go/pangolin/internal/parity"
	"github.com/pangolin-go/pangolin/structures/kv"
)

// benchSizes is the object-size sweep for figures 3 and 4 (trimmed from
// the CLI harness's five sizes to keep `go test -bench` runs bounded).
var benchSizes = []uint64{64, 1024, 16384}

// benchGeo sizes a pool for streams of allocations.
func benchGeo(objSize uint64, objs int) pangolin.Geometry {
	geo := pangolin.Geometry{
		ChunkSize:       64 * 1024,
		ChunksPerRow:    4,
		RowsPerZone:     41,
		NumLanes:        64,
		LaneSize:        64 * 1024,
		OverflowExts:    64,
		OverflowExtSize: 256 * 1024,
		RangeLockBytes:  8 * 1024,
	}
	zoneData := (geo.RowsPerZone - 1) * geo.ChunkSize * geo.ChunksPerRow
	geo.NumZones = (objSize+4096)*uint64(objs)/zoneData + 2
	return geo
}

func mustPool(b *testing.B, mode pangolin.Mode, geo pangolin.Geometry) *pangolin.Pool {
	b.Helper()
	p, err := pangolin.Create(pangolin.Config{Mode: mode, Geometry: geo})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	return p
}

// BenchmarkFig3Alloc measures single-object allocation transactions
// (paper Figure 3, "alloc" panels).
func BenchmarkFig3Alloc(b *testing.B) {
	for _, mode := range bench.Modes {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
				const batch = 4096
				p := mustPool(b, mode, benchGeo(size, batch))
				oids := make([]pangolin.OID, 0, batch)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if len(oids) == batch {
						// Recycle: free everything outside the timer.
						b.StopTimer()
						for _, oid := range oids {
							if err := p.Run(func(tx *pangolin.Tx) error { return tx.Free(oid) }); err != nil {
								b.Fatal(err)
							}
						}
						oids = oids[:0]
						b.StartTimer()
					}
					err := p.Run(func(tx *pangolin.Tx) error {
						oid, data, err := tx.Alloc(size, 1)
						if err != nil {
							return err
						}
						data[0] = byte(i)
						oids = append(oids, oid)
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3Overwrite measures whole-object overwrite transactions
// (Figure 3, "overwrite" panels).
func BenchmarkFig3Overwrite(b *testing.B) {
	for _, mode := range bench.Modes {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
				p := mustPool(b, mode, benchGeo(size, 64))
				var oid pangolin.OID
				if err := p.Run(func(tx *pangolin.Tx) error {
					var err error
					oid, _, err = tx.Alloc(size, 1)
					return err
				}); err != nil {
					b.Fatal(err)
				}
				buf := make([]byte, size)
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					buf[0] = byte(i)
					err := p.Run(func(tx *pangolin.Tx) error {
						data, err := tx.AddRange(oid, 0, size)
						if err != nil {
							return err
						}
						copy(data, buf)
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig3Free measures deallocation transactions (Figure 3, "free"
// panels). Objects are pre-allocated outside the timer in batches.
func BenchmarkFig3Free(b *testing.B) {
	for _, mode := range bench.Modes {
		size := uint64(1024)
		b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
			const batch = 4096
			p := mustPool(b, mode, benchGeo(size, batch))
			oids := make([]pangolin.OID, 0, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if len(oids) == 0 {
					b.StopTimer()
					n := min(batch, b.N-i)
					for j := 0; j < n; j++ {
						err := p.Run(func(tx *pangolin.Tx) error {
							oid, _, err := tx.Alloc(size, 1)
							oids = append(oids, oid)
							return err
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					b.StartTimer()
				}
				oid := oids[len(oids)-1]
				oids = oids[:len(oids)-1]
				if err := p.Run(func(tx *pangolin.Tx) error { return tx.Free(oid) }); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Scalability measures concurrent random overwrites (paper
// Figure 4) via RunParallel: each worker owns private objects.
func BenchmarkFig4Scalability(b *testing.B) {
	for _, mode := range []pangolin.Mode{pangolin.ModePangolinMLPC, pangolin.ModePangolinMLP, pangolin.ModePmemobjR} {
		for _, size := range benchSizes {
			b.Run(fmt.Sprintf("%s/%dB", mode, size), func(b *testing.B) {
				const slots = 128
				p := mustPool(b, mode, benchGeo(size, slots))
				oids := make([]pangolin.OID, slots)
				for i := range oids {
					if err := p.Run(func(tx *pangolin.Tx) error {
						var err error
						oids[i], _, err = tx.Alloc(size, 1)
						return err
					}); err != nil {
						b.Fatal(err)
					}
				}
				var next atomic.Uint64
				b.SetBytes(int64(size))
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					slot := int(next.Add(1)-1) % slots
					oid := oids[slot]
					buf := make([]byte, size)
					i := 0
					for pb.Next() {
						i++
						buf[0] = byte(i)
						err := p.Run(func(tx *pangolin.Tx) error {
							data, err := tx.AddRange(oid, 0, size)
							if err != nil {
								return err
							}
							copy(data, buf)
							return nil
						})
						if err != nil {
							b.Error(err)
							return
						}
					}
				})
			})
		}
	}
}

// fig5Modes trims the Figure 5/6 mode sweep for testing.B (pglbench runs
// the full matrix).
var fig5Modes = []pangolin.Mode{pangolin.ModePmemobj, pangolin.ModePangolinMLPC, pangolin.ModePmemobjR}

// kvForBench builds a structure in a pool sized for n keys.
func kvForBench(b *testing.B, f int, mode pangolin.Mode, n int) (kv.Map, *pangolin.Pool) {
	b.Helper()
	fac := bench.Factories[f]
	geo := benchGeo(fac.PerObj(), n)
	p := mustPool(b, mode, geo)
	m, err := fac.Make(p, n)
	if err != nil {
		b.Fatal(err)
	}
	return m, p
}

// BenchmarkFig5Insert measures key-value inserts per structure and mode
// (paper Figure 5, insert panels).
func BenchmarkFig5Insert(b *testing.B) {
	for fi := range bench.Factories {
		for _, mode := range fig5Modes {
			b.Run(fmt.Sprintf("%s/%s", bench.Factories[fi].Name(), mode), func(b *testing.B) {
				const batch = 30_000
				m, _ := kvForBench(b, fi, mode, batch)
				key := uint64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if key == batch {
						b.StopTimer()
						for k := uint64(0); k < batch; k++ {
							if _, err := m.Remove(k); err != nil {
								b.Fatal(err)
							}
						}
						key = 0
						b.StartTimer()
					}
					if err := m.Insert(key, key); err != nil {
						b.Fatal(err)
					}
					key++
				}
			})
		}
	}
}

// BenchmarkFig5Remove measures key-value removes (Figure 5, remove
// panels).
func BenchmarkFig5Remove(b *testing.B) {
	for fi := range bench.Factories {
		for _, mode := range fig5Modes {
			b.Run(fmt.Sprintf("%s/%s", bench.Factories[fi].Name(), mode), func(b *testing.B) {
				const batch = 30_000
				m, _ := kvForBench(b, fi, mode, batch)
				avail := 0
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if avail == 0 {
						b.StopTimer()
						n := min(batch, b.N-i)
						for k := 0; k < n; k++ {
							if err := m.Insert(uint64(k), uint64(k)); err != nil {
								b.Fatal(err)
							}
						}
						avail = n
						b.StartTimer()
					}
					avail--
					if ok, err := m.Remove(uint64(avail)); err != nil || !ok {
						b.Fatalf("remove %d: %v %v", avail, ok, err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6Policies measures insert cost under the checksum
// verification policies (paper Figure 6) on the large-object structure
// where verification matters most (rtree) and a small-object one (ctree).
func BenchmarkFig6Policies(b *testing.B) {
	type pol struct {
		name       string
		policy     pangolin.VerifyPolicy
		scrubEvery uint64
	}
	pols := []pol{
		{"Default", pangolin.VerifyDefault, 0},
		{"Scrub10K", pangolin.VerifyDefault, 10_000},
		{"Conservative", pangolin.VerifyConservative, 0},
	}
	for _, fi := range []int{0, 4} { // ctree, rtree
		for _, pc := range pols {
			b.Run(fmt.Sprintf("%s/%s", bench.Factories[fi].Name(), pc.name), func(b *testing.B) {
				fac := bench.Factories[fi]
				batch := 20_000
				if fi == 4 {
					batch = 4_000 // rtree nodes are 4 KB
				}
				geo := benchGeo(fac.PerObj(), batch)
				p, err := pangolin.Create(pangolin.Config{
					Mode: pangolin.ModePangolinMLPC, Geometry: geo,
					Policy: pc.policy, ScrubEvery: pc.scrubEvery,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(p.Close)
				m, err := fac.Make(p, batch)
				if err != nil {
					b.Fatal(err)
				}
				key := uint64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if key == uint64(batch) {
						b.StopTimer()
						for k := uint64(0); k < key; k++ {
							if _, err := m.Remove(k); err != nil {
								b.Fatal(err)
							}
						}
						key = 0
						b.StartTimer()
					}
					if err := m.Insert(key, key); err != nil {
						b.Fatal(err)
					}
					key++
				}
			})
		}
	}
}

// BenchmarkTable3TxSizes replays the Table 3 measurement, reporting the
// average allocated and modified bytes per insert transaction as custom
// metrics.
func BenchmarkTable3TxSizes(b *testing.B) {
	for fi := range bench.Factories {
		b.Run(bench.Factories[fi].Name(), func(b *testing.B) {
			const batch = 10_000
			m, p := kvForBench(b, fi, pangolin.ModePangolinMLPC, batch)
			st := p.Stats()
			key := uint64(0)
			st.ResetAccounting()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if key == batch {
					b.StopTimer()
					for k := uint64(0); k < key; k++ {
						if _, err := m.Remove(k); err != nil {
							b.Fatal(err)
						}
					}
					key = 0
					st.ResetAccounting()
					b.StartTimer()
				}
				if err := m.Insert(key, key); err != nil {
					b.Fatal(err)
				}
				key++
			}
			b.StopTimer()
			if txs := st.TxCount.Load(); txs > 0 {
				b.ReportMetric(float64(st.TxAllocBytes.Load())/float64(txs), "allocB/tx")
				b.ReportMetric(float64(st.TxModBytes.Load())/float64(txs), "modB/tx")
				b.ReportMetric(float64(st.TxObjects.Load())/float64(txs), "objs/tx")
			}
		})
	}
}

// BenchmarkTable4Vulnerability reports unverified object bytes per insert
// under the default policy (Table 4's measure) as a custom metric.
func BenchmarkTable4Vulnerability(b *testing.B) {
	for _, mode := range []pangolin.Mode{pangolin.ModePmemobj, pangolin.ModePangolinMLPC} {
		b.Run(mode.String(), func(b *testing.B) {
			const batch = 10_000
			m, p := kvForBench(b, 0, mode, batch) // ctree
			st := p.Stats()
			key := uint64(0)
			st.ResetAccounting()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if key == batch {
					b.StopTimer()
					for k := uint64(0); k < key; k++ {
						if _, err := m.Remove(k); err != nil {
							b.Fatal(err)
						}
					}
					key = 0
					st.ResetAccounting()
					b.StartTimer()
				}
				if err := m.Insert(key, key); err != nil {
					b.Fatal(err)
				}
				key++
			}
			b.StopTimer()
			if txs := st.TxCount.Load(); txs > 0 {
				b.ReportMetric(float64(st.UnverifiedBytes.Load())/float64(txs), "unverifiedB/tx")
			}
		})
	}
}

// BenchmarkPoolInit measures pool creation (zero + format + parity), the
// §4.2 one-time cost (the paper reports 130 s for a 100 GB pool).
func BenchmarkPoolInit(b *testing.B) {
	geo := pangolin.PaperGeometry(1) // one 25.6 MB zone, 100 rows
	b.SetBytes(int64(geo.PoolSize()))
	for i := 0; i < b.N; i++ {
		dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
		p, err := pangolin.CreateOnDevice(dev, pangolin.Config{
			Mode: pangolin.ModePangolinMLPC, Geometry: geo, Zero: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		p.Close()
	}
}

// BenchmarkPageRepair measures single-page online recovery (§4.6; the
// paper reports ~180 µs per page on a 100 GB pool).
func BenchmarkPageRepair(b *testing.B) {
	p := mustPool(b, pangolin.ModePangolinMLPC, benchGeo(1024, 4096))
	oids := make([]pangolin.OID, 512)
	for i := range oids {
		if err := p.Run(func(tx *pangolin.Tx) error {
			var err error
			oids[i], _, err = tx.Alloc(1024, 1)
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		oid := oids[i%len(oids)]
		p.InjectMediaError(oid.Off)
		if _, err := p.Get(oid); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParityXover sweeps the atomic vs. vectorized parity update
// paths (the §3.5 hybrid scheme's 8 KB threshold ablation).
func BenchmarkParityXover(b *testing.B) {
	geo := layout.Default()
	for _, size := range []uint64{512, 4096, 8192, 32768} {
		for _, path := range []struct {
			name      string
			threshold int
		}{{"atomic", 1 << 30}, {"vectorized", 1}} {
			b.Run(fmt.Sprintf("%dB/%s", size, path.name), func(b *testing.B) {
				dev := nvm.New(geo.PoolSize(), nvm.Options{TrackPersistence: true})
				par := parity.New(dev, geo, path.threshold)
				delta := make([]byte, size)
				for i := range delta {
					delta[i] = byte(i)
				}
				b.SetBytes(int64(size))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					par.Update(0, uint64(i)%(geo.RowSize()-size), delta)
					dev.Fence()
				}
			})
		}
	}
}

// BenchmarkChecksumAblation compares incremental Adler32 against full
// CRC32 recomputation for a small update to a large object — the §3.5
// justification for choosing Adler.
func BenchmarkChecksumAblation(b *testing.B) {
	obj := make([]byte, 64*1024)
	old := obj[1000:1064]
	new_ := make([]byte, 64)
	b.Run("AdlerIncremental64of64K", func(b *testing.B) {
		sum := csum.Adler32(obj)
		b.SetBytes(64)
		for i := 0; i < b.N; i++ {
			csum.Update(sum, uint64(len(obj)), 1000, old, new_)
		}
	})
	b.Run("CRCFull64K", func(b *testing.B) {
		b.SetBytes(int64(len(obj)))
		for i := 0; i < b.N; i++ {
			csum.CRC32(obj)
		}
	})
	b.Run("AdlerFull64K", func(b *testing.B) {
		b.SetBytes(int64(len(obj)))
		for i := 0; i < b.N; i++ {
			csum.Adler32(obj)
		}
	})
}
