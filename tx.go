package pangolin

import "github.com/pangolin-go/pangolin/internal/core"

// Tx is a transaction over a pool. The API mirrors the paper's Table 1:
// Alloc/Free (pgl_tx_alloc/free), Open (pgl_tx_open), AddRange
// (pgl_tx_add_range), Get (pgl_get), Commit/Abort.
//
// In Pangolin modes, Open and AddRange hand out views of the
// transaction's private DRAM micro-buffer; nothing reaches NVMM until
// Commit, which atomically updates the object, its checksum, and zone
// parity. In pmemobj modes, writes go to NVMM in place under undo
// logging, reproducing the baseline's (lack of) protection.
type Tx struct {
	t    *core.Tx
	pool *Pool
}

// Alloc allocates an object with size bytes of user data, returning its
// OID and the user-data bytes to initialize.
func (tx *Tx) Alloc(size uint64, typ uint32) (OID, []byte, error) {
	return tx.t.Alloc(size, typ)
}

// Free deallocates an object at commit.
func (tx *Tx) Free(oid OID) error { return tx.t.Free(oid) }

// Open gives write access to an object's user data (micro-buffered in
// Pangolin modes, with checksum verification on first open).
func (tx *Tx) Open(oid OID) ([]byte, error) { return tx.t.Open(oid) }

// AddRange declares bytes [off, off+n) of the object's user data as
// modified and returns the full user-data view.
func (tx *Tx) AddRange(oid OID, off, n uint64) ([]byte, error) {
	return tx.t.AddRange(oid, off, n)
}

// Get returns read-only access to an object (the transaction's own
// micro-buffer if it has one open).
func (tx *Tx) Get(oid OID) ([]byte, error) { return tx.t.Get(oid) }

// Commit makes the transaction durable and applies it (§3.4).
func (tx *Tx) Commit() error { return tx.t.Commit() }

// Abort discards the transaction; in Pangolin modes NVMM is untouched.
func (tx *Tx) Abort() { tx.t.Abort() }
