# Same commands CI runs — `make ci` is exactly the PR gate.
GO ?= go

.PHONY: all build vet lint test short race bench bench-alloc cover loadtest nightly ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific invariants (see internal/lint/doc.go): pgllint runs
# as a vettool so findings gate exactly like vet's.
bin/pgllint: $(wildcard cmd/pgllint/*.go internal/lint/*.go)
	$(GO) build -o bin/pgllint ./cmd/pgllint

lint: bin/pgllint
	$(GO) vet -vettool=$(abspath bin/pgllint) ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# One iteration of every benchmark: checks they still run, not their numbers.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# Hot-path allocation budgets (bench/alloc_budgets.txt): run the
# BenchmarkAlloc* suite with -benchmem at a fixed iteration count
# (allocs/op is deterministic there; ns/op is not gated) and fail if any
# benchmark exceeds its checked-in allocs/op or B/op budget.
bench-alloc:
	$(GO) test -run '^$$' -bench 'BenchmarkAlloc' -benchmem -benchtime 10000x \
		./server/ ./internal/shard/ ./internal/store/logstore/ | tee bench-alloc.txt
	$(GO) run ./cmd/allocgate bench-alloc.txt

cover:
	$(GO) test -short -covermode atomic -coverprofile coverage.out ./...
	$(GO) tool cover -func coverage.out | tail -n 1

# The serve → load → crash → check acceptance loop (see scripts/loadtest.sh).
loadtest:
	./scripts/loadtest.sh

# What the nightly workflow runs: everything un-shortened, then race.
nightly:
	$(GO) test -timeout 90m ./...
	$(GO) test -race -timeout 90m ./...

ci: build vet lint test race

clean:
	rm -f coverage.out
	rm -rf bin
