#!/usr/bin/env bash
# loadtest.sh — the serve → load → crash → check acceptance loop.
#
# Boots pglserve with $SHARDS shards, drives it with $CLIENTS closed-loop
# clients for $OPS operations, sends a simulated machine crash, then
# verifies every shard snapshot with `pglpool check`. The load report
# (ops/sec, latency percentiles, server stats) is copied to stdout and
# left in $WORKDIR/load.json.
set -euo pipefail

SHARDS=${SHARDS:-4}
CLIENTS=${CLIENTS:-32}
OPS=${OPS:-100000}
WORKDIR=${WORKDIR:-$(mktemp -d /tmp/pgl-loadtest.XXXXXX)}

cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin ./cmd/...

echo "# loadtest: $SHARDS shards, $CLIENTS clients, $OPS ops (workdir $WORKDIR)" >&2
./bin/pglserve -dir "$WORKDIR/kvset" -shards "$SHARDS" -addr 127.0.0.1:0 \
    >"$WORKDIR/serve.json" 2>"$WORKDIR/serve.log" &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT

# Wait for the startup line and extract the bound address.
for _ in $(seq 100); do
    [ -s "$WORKDIR/serve.json" ] && break
    sleep 0.1
done
ADDR=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$WORKDIR/serve.json")
if [ -z "$ADDR" ]; then
    echo "loadtest: server did not start:" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
fi

./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -crash-after \
    | tee "$WORKDIR/load.json"

# The crash request kills the server; wait for it to die.
wait "$SERVE_PID" || true
trap - EXIT

# Every shard must reopen and pass scrub.
status=0
for f in "$WORKDIR"/kvset/shard-*.pgl; do
    if ! ./bin/pglpool check "$f"; then
        echo "loadtest: FAILED pglpool check: $f" >&2
        status=1
    fi
done

errors=$(sed -n 's/.*"errors": \([0-9]*\),.*/\1/p' "$WORKDIR/load.json" | head -n 1)
if [ "${errors:-1}" != "0" ]; then
    echo "loadtest: FAILED with $errors client errors" >&2
    status=1
fi
[ "$status" = 0 ] && echo "# loadtest: OK" >&2
exit $status
