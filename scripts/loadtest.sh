#!/usr/bin/env bash
# loadtest.sh — the serve → load → crash → check acceptance loop.
#
# Boots pglserve with $SHARDS shards, then drives it in four phases
# against the SAME server run:
#
#   0. warmup:           $OPS unmeasured ops populate the store, so the two
#                        measured phases both run against a store of
#                        comparable size (an empty-store first phase would
#                        flatter whichever mode runs first)
#   1. per-op baseline:  $CLIENTS closed-loop clients, $OPS single-op frames
#   2. batch:            the same load sent as MGET/MPUT/MDEL of $BATCH ops,
#                        exercising the shard workers' group commit
#   3. crash mid-batch:  a background batch load is still running when the
#                        CRASH frame lands, so shards die with batch
#                        transactions in flight; every shard snapshot must
#                        then pass `pglpool check`
#
# The per-op and batch reports land in $WORKDIR/load-perop.json and
# $WORKDIR/load-batch.json; $WORKDIR/compare.json holds both ops/sec
# figures and the batch speedup (CI uploads all three). Set MIN_SPEEDUP to
# fail the run when batch/per-op falls below a bound (default 1.0 — batch
# mode must never be slower; the ISSUE-2 acceptance target is 2.0, which
# holds comfortably on dedicated hardware but is not gated in shared CI).
set -euo pipefail

SHARDS=${SHARDS:-4}
CLIENTS=${CLIENTS:-32}
OPS=${OPS:-100000}
BATCH=${BATCH:-16}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.0}
WORKDIR=${WORKDIR:-$(mktemp -d /tmp/pgl-loadtest.XXXXXX)}

cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin ./cmd/...

echo "# loadtest: $SHARDS shards, $CLIENTS clients, $OPS ops, batch $BATCH (workdir $WORKDIR)" >&2
./bin/pglserve -dir "$WORKDIR/kvset" -shards "$SHARDS" -addr 127.0.0.1:0 \
    >"$WORKDIR/serve.json" 2>"$WORKDIR/serve.log" &
SERVE_PID=$!
trap 'kill $SERVE_PID 2>/dev/null || true' EXIT

# Wait for the startup line and extract the bound address.
for _ in $(seq 100); do
    [ -s "$WORKDIR/serve.json" ] && break
    sleep 0.1
done
ADDR=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$WORKDIR/serve.json")
if [ -z "$ADDR" ]; then
    echo "loadtest: server did not start:" >&2
    cat "$WORKDIR/serve.log" >&2
    exit 1
fi

echo "# phase 0: warmup (unmeasured)" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 9 -batch "$BATCH" \
    >"$WORKDIR/load-warmup.json"

echo "# phase 1: per-op baseline" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 1 \
    | tee "$WORKDIR/load-perop.json"

echo "# phase 2: batch $BATCH" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 2 -batch "$BATCH" \
    | tee "$WORKDIR/load-batch.json"

echo "# phase 3: crash while a batch load is in flight" >&2
# The background load runs until the server dies under it; its client
# errors are expected (the crash kills their connections mid-frame).
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops 10000000 -seed 3 -batch "$BATCH" \
    >"$WORKDIR/load-crash-bg.json" 2>"$WORKDIR/load-crash-bg.log" &
BG_PID=$!
sleep 1
./bin/pglload -addr "$ADDR" -clients 4 -ops 2000 -seed 4 -batch "$BATCH" -crash-after \
    >"$WORKDIR/load-crash.json" 2>&1 || true
wait "$BG_PID" 2>/dev/null || true

# The crash request kills the server; wait for it to die.
wait "$SERVE_PID" || true
trap - EXIT

status=0

# Every shard must reopen and pass scrub after the mid-batch crash.
for f in "$WORKDIR"/kvset/shard-*.pgl; do
    if ! ./bin/pglpool check "$f"; then
        echo "loadtest: FAILED pglpool check: $f" >&2
        status=1
    fi
done

# Both measured phases must be error-free.
for phase in perop batch; do
    errors=$(sed -n 's/.*"errors": \([0-9]*\),.*/\1/p' "$WORKDIR/load-$phase.json" | head -n 1)
    if [ "${errors:-1}" != "0" ]; then
        echo "loadtest: FAILED with $errors client errors in $phase phase" >&2
        status=1
    fi
done

# Record the per-op vs batch trajectory.
PEROP=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-perop.json" | head -n 1)
BATCHOPS=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-batch.json" | head -n 1)
awk -v p="${PEROP:-0}" -v b="${BATCHOPS:-0}" -v batch="$BATCH" -v min="$MIN_SPEEDUP" 'BEGIN {
    s = (p > 0) ? b / p : 0
    printf "{\n  \"per_op_ops_per_sec\": %.1f,\n  \"batch_ops_per_sec\": %.1f,\n  \"batch\": %d,\n  \"speedup\": %.2f,\n  \"min_speedup\": %.2f\n}\n", p, b, batch, s, min
    exit !(s >= min)
}' | tee "$WORKDIR/compare.json" || {
    echo "loadtest: FAILED batch speedup below MIN_SPEEDUP=$MIN_SPEEDUP" >&2
    status=1
}

[ "$status" = 0 ] && echo "# loadtest: OK" >&2
exit $status
