#!/usr/bin/env bash
# loadtest.sh — the serve → load → crash → check acceptance loop.
#
# Boots pglserve with $SHARDS shards and drives it through ten phases
# (restarting the server — same data directory, clean sync + reopen —
# where a server-side switch changes):
#
#   0. warmup:            $OPS unmeasured ops populate the store, so the
#                         measured phases all run against a store of
#                         comparable size
#   1. per-op baseline:   $CLIENTS closed-loop clients, $OPS single-op frames
#   2. batch:             the same load sent as MGET/MPUT/MDEL of $BATCH ops,
#                         exercising the shard workers' group commit
#   3. read-heavy serial: 90% GET mix against a server restarted with
#                         -serial-reads (every read takes the worker hop) —
#                         the baseline for the read fast path
#   4. read-heavy fast:   the same mix against a normally-started server;
#                         GETs run checksum-verified on the connection
#                         handlers' goroutines behind the per-shard reader
#                         gate. The report's server_stats must show
#                         fast_gets > 0 (the fast path actually engaged).
#   5. scan mix:          79% GET / 10% SCAN / 1% SNAPSCAN / 10% PUT
#                         against the fast server; pglload verifies
#                         every SCAN response client-side (ascending,
#                         duplicate-free, bound-respecting) and pages
#                         every SNAPSCAN to completion (same checks,
#                         plus the pinned-window bound) while the PUTs
#                         keep commits racing the scan chunks. Gated on
#                         zero errors, on the server's fast_scans > 0
#                         (fast-path scans actually engaged), and on
#                         snap_scan_pairs > 0 (snapshot scans actually
#                         returned pinned pages); scan_ops_per_sec and
#                         snapshot_scan_ops_per_sec land in compare.json
#                         as trajectories, not gates
#   6. corruption healing: the server restarts with -scrub-interval, and
#                         the scan mix reruns while pglload INJECTs
#                         $FAULTS live faults (scribbles + media-error
#                         poison on random live objects) plus a few after
#                         the load stops. Gated on 0 client errors, on
#                         the background scrubber reporting bg_repairs >
#                         0 (pglload itself exits nonzero otherwise), and
#                         the phase's p99 vs phase 5's identical mix
#                         lands in compare.json (recorded, not
#                         ratio-gated: single-core CI container)
#   7. pipeline sweep:    the mixed single-op workload twice over the v2
#                         pipelined wire protocol — $PIPE_CLIENTS
#                         connections at in-flight depth 1, then depth
#                         $PIPE_DEPTH — against a freshly restarted
#                         server each time, so batches/batched_ops
#                         counters isolate one run. Gated on 0 errors in
#                         both runs and on the deep run's achieved
#                         group-commit size (batched_ops/batches)
#                         strictly exceeding the depth-1 run's: the
#                         pipelining → deeper worker queues → bigger
#                         group commits mechanism, proven from server
#                         counters. pipeline_speedup (deep vs depth-1
#                         ops/sec) lands in compare.json as a recorded
#                         trajectory, not a gate (single-core CI)
#   8. backend A/B:       the same write-heavy mix against two FRESH data
#                         directories — one all-pangolin, one all-logstore
#                         (small segments + the scrubber tick driving
#                         compaction) — each run asserting via pglload
#                         -backend that it measured the engine it meant
#                         to. backend_speedup (pangolin vs logstore
#                         ops/sec) and the log engine's segment/compaction
#                         counters land in compare.json as a recorded
#                         trajectory, not a gate; both runs must be
#                         error-free
#   9. backup/restore:    a BACKUP stream is taken while a background
#                         batch load keeps committing, written to a
#                         file, and replayed (-restore) into a FRESH
#                         data directory; after the run every restored
#                         shard snapshot must pass `pglpool check` and
#                         the restored pair count must equal the backup
#                         pair count — ROADMAP item 5's acceptance: a
#                         backup under sustained writes restores to a
#                         generation-consistent image. The backup
#                         report's peak versions_retained lands in
#                         compare.json (the version-buffer cost of
#                         holding the image open)
#  10. crash mid-batch:   a background batch load is still running when the
#                         CRASH frame lands — with the scrubber still
#                         interleaving steps — so shards die with batch
#                         transactions in flight; every shard snapshot must
#                         then pass `pglpool check`
#
# compare.json records per-op vs batch ops/sec (speedup), serial vs
# fast read ops/sec (read_speedup), the scan phase's scan_ops_per_sec
# and snapshot_scan_ops_per_sec (with snap_evictions — scans whose pin
# the bounded version buffer evicted, the typed cap outcome), the
# backup phase's pair count and peak versions_retained, the corruption
# phase's scrub health (bg_repairs, scrub_steps, scrub_backoffs,
# scrub_p99_ratio), the pipeline sweep's pipeline_speedup with both
# group-commit means, the deep-pipeline run's client-side allocation
# pressure (alloc_bytes_per_op, gc_pause_p99 — recorded, not gated),
# and the logstore run's quarantined_segments; CI uploads it with the
# phase reports and the backup artifacts.
# MIN_SPEEDUP / MIN_READ_SPEEDUP fail the run when a ratio falls below
# the bound (default 1.0 — the optimized path must never be slower; the
# ISSUE-3 acceptance target for reads is 2.0, which holds on dedicated
# hardware but is not gated in shared CI, and scan throughput and scrub
# p99 are likewise recorded but not ratio-gated on the single-core CI
# container).
set -euo pipefail

SHARDS=${SHARDS:-4}
CLIENTS=${CLIENTS:-32}
OPS=${OPS:-100000}
BATCH=${BATCH:-16}
READ_FRAC=${READ_FRAC:-0.9}
READ_CLIENTS=${READ_CLIENTS:-$CLIENTS}
MIN_SPEEDUP=${MIN_SPEEDUP:-1.0}
MIN_READ_SPEEDUP=${MIN_READ_SPEEDUP:-1.0}
FAULTS=${FAULTS:-40}
SCRUB_INTERVAL=${SCRUB_INTERVAL:-2ms}
PIPE_CLIENTS=${PIPE_CLIENTS:-8}
PIPE_DEPTH=${PIPE_DEPTH:-64}
WORKDIR=${WORKDIR:-$(mktemp -d /tmp/pgl-loadtest.XXXXXX)}

cd "$(dirname "$0")/.."
mkdir -p bin
go build -o bin ./cmd/...

echo "# loadtest: $SHARDS shards, $CLIENTS clients, $OPS ops, batch $BATCH, reads $READ_FRAC (workdir $WORKDIR)" >&2

SERVE_PID=""
ADDR=""
SERVE_DIR="$WORKDIR/kvset"

start_server() { # start_server <logname> [extra pglserve flags...]; data dir from $SERVE_DIR
    local name=$1; shift
    : >"$WORKDIR/$name.json"
    ./bin/pglserve -dir "$SERVE_DIR" -shards "$SHARDS" -addr 127.0.0.1:0 "$@" \
        >"$WORKDIR/$name.json" 2>"$WORKDIR/$name.log" &
    SERVE_PID=$!
    for _ in $(seq 100); do
        [ -s "$WORKDIR/$name.json" ] && break
        sleep 0.1
    done
    ADDR=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$WORKDIR/$name.json")
    if [ -z "$ADDR" ]; then
        echo "loadtest: server did not start ($name):" >&2
        cat "$WORKDIR/$name.log" >&2
        exit 1
    fi
}

stop_server() { # clean shutdown: sync every shard, then reopen next time
    kill -TERM "$SERVE_PID" 2>/dev/null || true
    wait "$SERVE_PID" 2>/dev/null || true
    SERVE_PID=""
}

trap '[ -n "$SERVE_PID" ] && kill $SERVE_PID 2>/dev/null || true' EXIT

start_server serve

echo "# phase 0: warmup (unmeasured)" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 9 -batch "$BATCH" \
    >"$WORKDIR/load-warmup.json"

echo "# phase 1: per-op baseline" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 1 \
    | tee "$WORKDIR/load-perop.json"

echo "# phase 2: batch $BATCH" >&2
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 2 -batch "$BATCH" \
    | tee "$WORKDIR/load-batch.json"

echo "# phase 3: read-heavy ($READ_FRAC GET), worker-serialized reads" >&2
stop_server
start_server serve-serial -serial-reads
./bin/pglload -addr "$ADDR" -clients "$READ_CLIENTS" -ops "$OPS" -seed 5 \
    -reads "$READ_FRAC" -dels 0.02 \
    | tee "$WORKDIR/load-read-serial.json"

echo "# phase 4: read-heavy ($READ_FRAC GET), concurrent fast path" >&2
stop_server
start_server serve-fast
./bin/pglload -addr "$ADDR" -clients "$READ_CLIENTS" -ops "$OPS" -seed 5 \
    -reads "$READ_FRAC" -dels 0.02 \
    | tee "$WORKDIR/load-read-fast.json"

echo "# phase 5: scan mix (79% GET / 10% SCAN / 1% SNAPSCAN / 10% PUT), fast path" >&2
./bin/pglload -addr "$ADDR" -clients "$READ_CLIENTS" -ops "$OPS" -seed 6 \
    -reads 0.79 -scans 0.1 -snapscans 0.01 -dels 0 \
    | tee "$WORKDIR/load-scan.json"

echo "# phase 6: corruption healing ($FAULTS live faults, scrubber every $SCRUB_INTERVAL)" >&2
stop_server
start_server serve-scrub -scrub-interval "$SCRUB_INTERVAL"
# Same mix as phase 5, so scrub_p99_ratio compares like with like.
# pglload exits nonzero unless the background scrubber reports
# bg_repairs > 0 after the injections — the corruption-healing gate.
./bin/pglload -addr "$ADDR" -clients "$READ_CLIENTS" -ops "$OPS" -seed 7 \
    -reads 0.79 -scans 0.1 -snapscans 0.01 -dels 0 -faults "$FAULTS" \
    | tee "$WORKDIR/load-scrub.json"

echo "# phase 7: pipeline sweep (depth 1 vs $PIPE_DEPTH, $PIPE_CLIENTS connections)" >&2
# Fresh server per run: batches/batched_ops then count one run only, so
# the group-commit depth comparison below is clean.
stop_server
start_server serve-pipe1
./bin/pglload -addr "$ADDR" -clients "$PIPE_CLIENTS" -ops "$OPS" -seed 8 -pipeline 1 \
    | tee "$WORKDIR/load-pipe1.json"
stop_server
start_server serve-pipe-deep
./bin/pglload -addr "$ADDR" -clients "$PIPE_CLIENTS" -ops "$OPS" -seed 8 -pipeline "$PIPE_DEPTH" \
    | tee "$WORKDIR/load-pipe-deep.json"

echo "# phase 8: backend A/B (write-heavy, pangolin vs logstore, fresh dirs)" >&2
# Fresh directories so neither engine inherits the other's working set;
# a small key space makes the mix overwrite-heavy, which is what gives
# the log engine dead records to compact (scrubber ticks double as the
# logstore's compaction driver). pglload -backend makes each run fail
# loudly if it measured the wrong engine.
stop_server
SERVE_DIR="$WORKDIR/kvset-ab-pangolin"
start_server serve-ab-pangolin -scrub-interval "$SCRUB_INTERVAL"
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 11 -keys 4096 \
    -reads 0.2 -dels 0.1 -backend pangolin \
    | tee "$WORKDIR/load-ab-pangolin.json"
stop_server
SERVE_DIR="$WORKDIR/kvset-ab-logstore"
start_server serve-ab-logstore -backend logstore -log-segment-bytes 65536 -scrub-interval "$SCRUB_INTERVAL"
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops "$OPS" -seed 11 -keys 4096 \
    -reads 0.2 -dels 0.1 -backend logstore \
    | tee "$WORKDIR/load-ab-logstore.json"
SERVE_DIR="$WORKDIR/kvset"

echo "# phase 9: backup under sustained writes, restore into a fresh set" >&2
stop_server
start_server serve-backup
# The background load keeps group commits landing while the BACKUP
# stream pins its snapshot and pages the whole keyspace; its client
# errors when killed are expected and not gated.
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops 10000000 -seed 13 -batch "$BATCH" \
    >"$WORKDIR/load-backup-bg.json" 2>"$WORKDIR/load-backup-bg.log" &
BK_PID=$!
sleep 1
./bin/pglload -addr "$ADDR" -backup "$WORKDIR/backup.bin" | tee "$WORKDIR/backup.json"
kill "$BK_PID" 2>/dev/null || true
wait "$BK_PID" 2>/dev/null || true
stop_server
# Replay the stream into a FRESH directory; the clean stop afterwards
# syncs shard snapshots for the pglpool check below.
SERVE_DIR="$WORKDIR/kvset-restore"
start_server serve-restore
./bin/pglload -addr "$ADDR" -restore "$WORKDIR/backup.bin" | tee "$WORKDIR/restore.json"
stop_server
SERVE_DIR="$WORKDIR/kvset"

echo "# phase 10: crash while a batch load is in flight (scrubber still on)" >&2
stop_server
start_server serve-crash -scrub-interval "$SCRUB_INTERVAL"
# The background load runs until the server dies under it; its client
# errors are expected (the crash kills their connections mid-frame).
./bin/pglload -addr "$ADDR" -clients "$CLIENTS" -ops 10000000 -seed 3 -batch "$BATCH" \
    >"$WORKDIR/load-crash-bg.json" 2>"$WORKDIR/load-crash-bg.log" &
BG_PID=$!
sleep 1
./bin/pglload -addr "$ADDR" -clients 4 -ops 2000 -seed 4 -batch "$BATCH" -crash-after \
    >"$WORKDIR/load-crash.json" 2>&1 || true
wait "$BG_PID" 2>/dev/null || true

# The crash request kills the server; wait for it to die.
wait "$SERVE_PID" || true
SERVE_PID=""
trap - EXIT

status=0

# Every shard must reopen and pass scrub after the mid-batch crash.
for f in "$WORKDIR"/kvset/shard-*.pgl; do
    if ! ./bin/pglpool check "$f"; then
        echo "loadtest: FAILED pglpool check: $f" >&2
        status=1
    fi
done

# The backup taken under sustained writes must restore completely
# (every streamed pair replayed) into shards that pass pglpool check —
# the generation-consistent-image acceptance of ROADMAP item 5.
BACKUP_PAIRS=$(sed -n 's/.*"backup_pairs": \([0-9]*\),*.*/\1/p' "$WORKDIR/backup.json" | head -n 1)
RESTORED_PAIRS=$(sed -n 's/.*"restored_pairs": \([0-9]*\),*.*/\1/p' "$WORKDIR/restore.json" | head -n 1)
VERSIONS_RETAINED=$(sed -n 's/.*"versions_retained": \([0-9]*\),*.*/\1/p' "$WORKDIR/backup.json" | head -n 1)
if [ "${BACKUP_PAIRS:-0}" = "0" ]; then
    echo "loadtest: FAILED backup streamed no pairs" >&2
    status=1
elif [ "${BACKUP_PAIRS}" != "${RESTORED_PAIRS:-}" ]; then
    echo "loadtest: FAILED restore replayed ${RESTORED_PAIRS:-0} of $BACKUP_PAIRS backup pairs" >&2
    status=1
fi
RESTORE_CHECKED=0
for f in "$WORKDIR"/kvset-restore/shard-*.pgl; do
    [ -e "$f" ] || continue
    if ! ./bin/pglpool check "$f"; then
        echo "loadtest: FAILED pglpool check (restored from backup): $f" >&2
        status=1
    fi
    RESTORE_CHECKED=$((RESTORE_CHECKED + 1))
done
if [ "$RESTORE_CHECKED" = 0 ]; then
    echo "loadtest: FAILED no restored shard snapshots to check" >&2
    status=1
fi

# Every measured phase must be error-free (scan errors include pglload's
# client-side order/bounds verification of every SCAN response; scrub
# errors would be corruption a client op observed).
for phase in perop batch read-serial read-fast scan scrub pipe1 pipe-deep ab-pangolin ab-logstore; do
    errors=$(sed -n 's/.*"errors": \([0-9]*\),.*/\1/p' "$WORKDIR/load-$phase.json" | head -n 1)
    if [ "${errors:-1}" != "0" ]; then
        echo "loadtest: FAILED with $errors client errors in $phase phase" >&2
        status=1
    fi
done

# The fast phase must actually have used the fast path, and the serial
# phase must not have.
FAST_GETS=$(sed -n 's/.*"fast_gets": \([0-9]*\),.*/\1/p' "$WORKDIR/load-read-fast.json" | head -n 1)
SERIAL_FAST_GETS=$(sed -n 's/.*"fast_gets": \([0-9]*\),.*/\1/p' "$WORKDIR/load-read-serial.json" | head -n 1)
if [ "${FAST_GETS:-0}" = "0" ]; then
    echo "loadtest: FAILED read fast path never engaged (fast_gets=0)" >&2
    status=1
fi
if [ "${SERIAL_FAST_GETS:-0}" != "0" ]; then
    echo "loadtest: FAILED -serial-reads server served fast reads (fast_gets=$SERIAL_FAST_GETS)" >&2
    status=1
fi

# The scan phase must have engaged the scan fast path (gate: scans
# complete with 0 errors — checked above — and fast-path scans engage).
FAST_SCANS=$(sed -n 's/.*"fast_scans": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
if [ "${FAST_SCANS:-0}" = "0" ]; then
    echo "loadtest: FAILED scan fast path never engaged (fast_scans=0)" >&2
    status=1
fi

# The snapshot scans in the same mix must have returned pinned pages
# (snap_scan_pairs > 0; their per-page order/bounds checks fold into the
# phase's 0-errors gate above). Throughput is recorded, not gated.
SNAPOPS=$(sed -n 's/.*"snapshot_scan_ops_per_sec": \([0-9.]*\),*.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
SNAPPAIRS=$(sed -n 's/.*"snap_scan_pairs": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
SNAPEVICT=$(sed -n 's/.*"snap_evictions": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
if [ "${SNAPPAIRS:-0}" = "0" ]; then
    echo "loadtest: FAILED snapshot scans returned no pairs (snap_scan_pairs=0)" >&2
    status=1
fi

# The corruption phase must show the background scrubber healing live
# injected faults (bg_repairs > 0; pglload already gated on this and on
# 0 client errors, checked again here from the server's own stats).
BG_REPAIRS=$(sed -n 's/.*"bg_repairs": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scrub.json" | head -n 1)
SCRUB_STEPS=$(sed -n 's/.*"scrub_steps": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scrub.json" | head -n 1)
SCRUB_BACKOFFS=$(sed -n 's/.*"scrub_backoffs": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scrub.json" | head -n 1)
FAULTS_INJECTED=$(sed -n 's/.*"faults_injected": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scrub.json" | head -n 1)
if [ "${BG_REPAIRS:-0}" = "0" ]; then
    echo "loadtest: FAILED background scrubber repaired nothing (bg_repairs=0, injected ${FAULTS_INJECTED:-?})" >&2
    status=1
fi

# The deep pipeline run must achieve strictly bigger group commits than
# the depth-1 run — the wire-level proof that pipelining feeds the shard
# workers' group commit (each server was fresh, so the counters are per
# run). group_batch_mean is omitted from a report when no group commits
# happened at all, so default it to 0.
GBM1=$(sed -n 's/.*"group_batch_mean": \([0-9.]*\),*.*/\1/p' "$WORKDIR/load-pipe1.json" | head -n 1)
GBMDEEP=$(sed -n 's/.*"group_batch_mean": \([0-9.]*\),*.*/\1/p' "$WORKDIR/load-pipe-deep.json" | head -n 1)
if ! awk -v a="${GBM1:-0}" -v b="${GBMDEEP:-0}" 'BEGIN { exit !(b > a) }'; then
    echo "loadtest: FAILED pipelining did not deepen group commits (depth 1 mean ${GBM1:-0}, depth $PIPE_DEPTH mean ${GBMDEEP:-0})" >&2
    status=1
fi

# Record the per-op vs batch, serial vs fast read, scan, scrub,
# pipeline, and backend A/B trajectories (backend_speedup is pangolin
# over logstore ops/sec on the identical write-heavy mix — recorded,
# not gated, like the other single-core-container ratios).
PEROP=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-perop.json" | head -n 1)
BATCHOPS=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-batch.json" | head -n 1)
READSERIAL=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-read-serial.json" | head -n 1)
READFAST=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-read-fast.json" | head -n 1)
SCANOPS=$(sed -n 's/.*"scan_ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
SCANPAIRS=$(sed -n 's/.*"scan_pairs": \([0-9]*\),.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
# p99 of the scan mix with and without the scrubber (identical mixes, so
# the ratio is the background scrubber's client-visible commit/read
# latency cost; recorded, not gated, on the single-core container).
SCANP99=$(sed -n 's/.*"p99": \([0-9.]*\),.*/\1/p' "$WORKDIR/load-scan.json" | head -n 1)
SCRUBP99=$(sed -n 's/.*"p99": \([0-9.]*\),.*/\1/p' "$WORKDIR/load-scrub.json" | head -n 1)
PIPE1OPS=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-pipe1.json" | head -n 1)
PIPEDEEPOPS=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-pipe-deep.json" | head -n 1)
ABPANGOLIN=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-ab-pangolin.json" | head -n 1)
ABLOGSTORE=$(sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' "$WORKDIR/load-ab-logstore.json" | head -n 1)
LOGSEGS=$(sed -n 's/.*"segments": \([0-9]*\),.*/\1/p' "$WORKDIR/load-ab-logstore.json" | head -n 1)
LOGCOMPACTIONS=$(sed -n 's/.*"compactions": \([0-9]*\),.*/\1/p' "$WORKDIR/load-ab-logstore.json" | head -n 1)
# Segments a corrupt-record merge abort parked: data held back from
# compaction — an operator signal, recorded so a regression shows up.
LOGQUAR=$(sed -n 's/.*"quarantined_segments": \([0-9]*\),*.*/\1/p' "$WORKDIR/load-ab-logstore.json" | head -n 1)
# Client-process allocation pressure on the deep-pipeline run, from
# pglload's runtime/metrics bracket (alloc_bytes_per_op, gc_pause_p99 in
# seconds). Recorded, not gated: single-core container numbers are for
# trend-watching across PRs, like the other ratios.
ALLOCPEROP=$(sed -n 's/.*"alloc_bytes_per_op": \([0-9.e+-]*\),*.*/\1/p' "$WORKDIR/load-pipe-deep.json" | head -n 1)
GCPAUSEP99=$(sed -n 's/.*"gc_pause_p99": \([0-9.e+-]*\),*.*/\1/p' "$WORKDIR/load-pipe-deep.json" | head -n 1)
awk -v p="${PEROP:-0}" -v b="${BATCHOPS:-0}" -v batch="$BATCH" -v min="$MIN_SPEEDUP" \
    -v rs="${READSERIAL:-0}" -v rf="${READFAST:-0}" -v rfrac="$READ_FRAC" -v rmin="$MIN_READ_SPEEDUP" \
    -v fg="${FAST_GETS:-0}" -v so="${SCANOPS:-0}" -v sp="${SCANPAIRS:-0}" -v fs="${FAST_SCANS:-0}" \
    -v br="${BG_REPAIRS:-0}" -v ss="${SCRUB_STEPS:-0}" -v sb="${SCRUB_BACKOFFS:-0}" \
    -v fi="${FAULTS_INJECTED:-0}" -v sp99="${SCANP99:-0}" -v scp99="${SCRUBP99:-0}" \
    -v p1="${PIPE1OPS:-0}" -v pd="${PIPEDEEPOPS:-0}" -v pdepth="$PIPE_DEPTH" \
    -v g1="${GBM1:-0}" -v gd="${GBMDEEP:-0}" \
    -v abp="${ABPANGOLIN:-0}" -v abl="${ABLOGSTORE:-0}" \
    -v lsegs="${LOGSEGS:-0}" -v lcomp="${LOGCOMPACTIONS:-0}" \
    -v sno="${SNAPOPS:-0}" -v snp="${SNAPPAIRS:-0}" -v sne="${SNAPEVICT:-0}" \
    -v bpr="${BACKUP_PAIRS:-0}" -v vr="${VERSIONS_RETAINED:-0}" -v lq="${LOGQUAR:-0}" \
    -v abo="${ALLOCPEROP:-0}" -v gcp="${GCPAUSEP99:-0}" 'BEGIN {
    s = (p > 0) ? b / p : 0
    r = (rs > 0) ? rf / rs : 0
    p99r = (sp99 > 0) ? scp99 / sp99 : 0
    ps = (p1 > 0) ? pd / p1 : 0
    bs = (abl > 0) ? abp / abl : 0
    printf "{\n"
    printf "  \"per_op_ops_per_sec\": %.1f,\n  \"batch_ops_per_sec\": %.1f,\n  \"batch\": %d,\n  \"speedup\": %.2f,\n  \"min_speedup\": %.2f,\n", p, b, batch, s, min
    printf "  \"read_serial_ops_per_sec\": %.1f,\n  \"read_fast_ops_per_sec\": %.1f,\n  \"read_fraction\": %s,\n  \"fast_gets\": %d,\n  \"read_speedup\": %.2f,\n  \"min_read_speedup\": %.2f,\n", rs, rf, rfrac, fg, r, rmin
    printf "  \"scan_ops_per_sec\": %.1f,\n  \"scan_pairs\": %d,\n  \"fast_scans\": %d,\n", so, sp, fs
    printf "  \"snapshot_scan_ops_per_sec\": %.1f,\n  \"snap_scan_pairs\": %d,\n  \"snap_evictions\": %d,\n", sno, snp, sne
    printf "  \"backup_pairs\": %d,\n  \"versions_retained\": %d,\n", bpr, vr
    printf "  \"faults_injected\": %d,\n  \"bg_repairs\": %d,\n  \"scrub_steps\": %d,\n  \"scrub_backoffs\": %d,\n  \"scrub_p99_ratio\": %.2f,\n", fi, br, ss, sb, p99r
    printf "  \"pipe1_ops_per_sec\": %.1f,\n  \"pipe_deep_ops_per_sec\": %.1f,\n  \"pipe_depth\": %d,\n  \"pipeline_speedup\": %.2f,\n", p1, pd, pdepth, ps
    printf "  \"alloc_bytes_per_op\": %.1f,\n  \"gc_pause_p99\": %.6f,\n", abo, gcp
    printf "  \"group_batch_mean_depth1\": %.2f,\n  \"group_batch_mean_deep\": %.2f,\n", g1, gd
    printf "  \"backend_pangolin_ops_per_sec\": %.1f,\n  \"backend_logstore_ops_per_sec\": %.1f,\n  \"backend_speedup\": %.2f,\n", abp, abl, bs
    printf "  \"logstore_segments\": %d,\n  \"logstore_compactions\": %d,\n  \"logstore_quarantined\": %d\n", lsegs, lcomp, lq
    printf "}\n"
    exit !(s >= min && r >= rmin)
}' | tee "$WORKDIR/compare.json" || {
    echo "loadtest: FAILED speedup below bound (batch >= $MIN_SPEEDUP, read >= $MIN_READ_SPEEDUP)" >&2
    status=1
}

[ "$status" = 0 ] && echo "# loadtest: OK" >&2
exit $status
