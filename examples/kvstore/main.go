// Kvstore is a persistent key-value store CLI backed by the hashmap
// structure, with the pool saved to a snapshot file between runs — the
// application shape the paper's §4.5 evaluation models.
//
//	go run ./examples/kvstore -pool /tmp/kv.pgl set lang pangolin
//	go run ./examples/kvstore -pool /tmp/kv.pgl get lang
//	go run ./examples/kvstore -pool /tmp/kv.pgl del lang
//	go run ./examples/kvstore -pool /tmp/kv.pgl stats
//
// Keys and values are strings up to 8 bytes, packed into the uint64 keys
// the structures use (a real application would store string objects; the
// packing keeps the example focused on the library).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/pangolin-go/pangolin"
	"github.com/pangolin-go/pangolin/structures/hashmap"
)

// dirRoot is the pool root: it remembers the hashmap anchor across runs.
type dirRoot struct {
	MapAnchor pangolin.OID
}

func pack(s string) (uint64, error) {
	if len(s) > 8 {
		return 0, fmt.Errorf("%q longer than 8 bytes", s)
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		v |= uint64(s[i]) << (8 * i)
	}
	return v, nil
}

func unpack(v uint64) string {
	b := make([]byte, 0, 8)
	for i := 0; i < 8; i++ {
		c := byte(v >> (8 * i))
		if c == 0 {
			break
		}
		b = append(b, c)
	}
	return string(b)
}

func main() {
	poolPath := flag.String("pool", "/tmp/pangolin-kv.pgl", "pool snapshot file")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: kvstore [-pool file] {set k v | get k | del k | stats}")
		os.Exit(2)
	}
	cfg := pangolin.DefaultConfig()

	var pool *pangolin.Pool
	if _, err := os.Stat(*poolPath); err == nil {
		pool, err = pangolin.LoadFile(*poolPath, cfg)
		if err != nil {
			log.Fatalf("opening pool: %v", err)
		}
	} else {
		var err error
		pool, err = pangolin.Create(cfg)
		if err != nil {
			log.Fatalf("creating pool: %v", err)
		}
	}
	defer pool.Close()

	root, err := pangolin.Root[dirRoot](pool, 100)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := pangolin.GetFromPool[dirRoot](pool, root)
	if err != nil {
		log.Fatal(err)
	}
	var m *hashmap.Map
	if dir.MapAnchor.IsNil() {
		m, err = hashmap.New(pool)
		if err != nil {
			log.Fatal(err)
		}
		anchor := m.Anchor()
		err = pool.Run(func(tx *pangolin.Tx) error {
			d, err := pangolin.Open[dirRoot](tx, root)
			if err != nil {
				return err
			}
			d.MapAnchor = anchor
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		m, err = hashmap.Attach(pool, dir.MapAnchor)
		if err != nil {
			log.Fatal(err)
		}
	}

	switch flag.Arg(0) {
	case "set":
		if flag.NArg() != 3 {
			log.Fatal("set needs key and value")
		}
		k, err := pack(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		v, err := pack(flag.Arg(2))
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Insert(k, v); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("set %q = %q\n", flag.Arg(1), flag.Arg(2))
	case "get":
		k, err := pack(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		v, ok, err := m.Lookup(k)
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			fmt.Printf("%q not found\n", flag.Arg(1))
			os.Exit(1)
		}
		fmt.Printf("%q = %q\n", flag.Arg(1), unpack(v))
	case "del":
		k, err := pack(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		ok, err := m.Remove(k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deleted %q: %v\n", flag.Arg(1), ok)
	case "stats":
		n, err := m.Len()
		if err != nil {
			log.Fatal(err)
		}
		st := pool.Stats()
		fmt.Printf("keys: %d\ncommits: %d\nlogged bytes: %d\nµ-buffer high-water: %d B\n",
			n, st.Commits.Load(), st.LoggedBytes.Load(), st.MBufHighWater.Load())
		if rep, err := pool.Scrub(); err == nil {
			fmt.Printf("scrub: %d objects verified, %d repaired\n", rep.Objects, rep.Repaired)
		}
	default:
		log.Fatalf("unknown command %q", flag.Arg(0))
	}

	if err := pool.SaveFile(*poolPath); err != nil {
		log.Fatalf("saving pool: %v", err)
	}
}
