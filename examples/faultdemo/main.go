// Faultdemo walks through the paper's §4.6 error-injection scenarios:
// an uncorrectable media error repaired online through the SIGBUS-analog
// path, a software scribble caught by object checksums, a buffer overrun
// stopped by micro-buffer canaries, and a scrubbing pass.
//
//	go run ./examples/faultdemo
package main

import (
	"fmt"
	"log"

	"github.com/pangolin-go/pangolin"
)

type record struct {
	Serial  uint64
	Payload [48]byte
}

func main() {
	pool, err := pangolin.Create(pangolin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// Populate some objects.
	var oids []pangolin.OID
	for i := uint64(0); i < 32; i++ {
		err := pool.Run(func(tx *pangolin.Tx) error {
			oid, rec, err := pangolin.Alloc[record](tx, 7)
			if err != nil {
				return err
			}
			rec.Serial = i
			copy(rec.Payload[:], fmt.Sprintf("record-%02d payload", i))
			oids = append(oids, oid)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// 1. Media error: the page under record 5 dies (MCE → SIGBUS in the
	// paper; a poisoned page returning faults here). The next read
	// freezes the pool, rebuilds the page column from parity, repairs
	// the page, and resumes — online.
	victim := oids[5]
	pool.InjectMediaError(victim.Off)
	rec, err := pangolin.GetFromPool[record](pool, victim)
	if err != nil {
		log.Fatalf("online media-error recovery failed: %v", err)
	}
	fmt.Printf("media error repaired online: serial=%d payload=%q\n",
		rec.Serial, rec.Payload[:17])

	// 2. Scribble: a buggy store overwrites record 9's bytes without
	// going through the library. The checksum catches it when the
	// object is next opened, and parity restores the original.
	victim = oids[9]
	pool.InjectScribble(victim.Off, 16, 42)
	err = pool.Run(func(tx *pangolin.Tx) error {
		r, err := pangolin.Open[record](tx, victim)
		if err != nil {
			return err
		}
		if r.Serial != 9 {
			return fmt.Errorf("restored serial wrong: %d", r.Serial)
		}
		return nil
	})
	if err != nil {
		log.Fatalf("scribble recovery failed: %v", err)
	}
	fmt.Println("scribble detected by checksum and repaired from parity")

	// 3. Buffer overrun: writing past the object in a micro-buffer
	// clobbers the canary; commit aborts before anything reaches NVMM.
	obj, err := pangolin.OpenSingle[record](pool, oids[0])
	if err != nil {
		log.Fatal(err)
	}
	raw := obj.Data()
	raw = raw[:cap(raw)]
	for i := len(obj.Data()); i < len(raw); i++ {
		raw[i] = 0xEE // past the end of the object
	}
	if err := obj.Commit(); err != nil {
		fmt.Printf("canary caught the overrun: %v\n", err)
	} else {
		log.Fatal("overrun not detected!")
	}
	if rec, err := pangolin.GetFromPool[record](pool, oids[0]); err != nil || rec.Serial != 0 {
		log.Fatalf("NVMM corrupted despite canary: %v", err)
	}

	// 4. Scrub: verify the whole pool.
	repData, err := pool.Scrub()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub: %d objects verified, %d bad, %d repaired\n",
		repData.Objects, repData.BadObjects, repData.Repaired)

	// 5. A fault mid-run plus crash: reopen recovers everything.
	pool.InjectMediaError(oids[20].Off)
	img := pool.Device().CrashCopy(pangolin.CrashStrict, 7)
	pool.Close()
	pool2, err := pangolin.OpenDevice(img, pangolin.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	rec, err = pangolin.GetFromPool[record](pool2, oids[20])
	if err != nil || rec.Serial != 20 {
		log.Fatalf("open-time repair failed: %v", err)
	}
	fmt.Println("poisoned page repaired during pool open (known-bad-page list)")
}
