// Quickstart mirrors the paper's Listings 1 and 2: build a persistent
// linked list with transactions, update a node atomic-style with
// pgl_open/pgl_commit, and survive a simulated power failure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/pangolin-go/pangolin"
)

// Node is a persistent linked-list node. Persistent structs hold OIDs
// instead of Go pointers and must be pointer-free.
type Node struct {
	Next pangolin.OID
	Val  uint64
}

func main() {
	// Create a pool with full protection: micro-buffering, replicated
	// metadata/logs, ~parity, and object checksums (Pangolin-MLPC).
	pool, err := pangolin.Create(pangolin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	// The root object anchors all reachable data (§2.3).
	root, err := pangolin.Root[Node](pool, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Listing 1, transactional style: allocate and link three nodes.
	// Everything inside Run commits atomically — object data, checksums,
	// allocator metadata, and parity.
	err = pool.Run(func(tx *pangolin.Tx) error {
		head, err := pangolin.Open[Node](tx, root)
		if err != nil {
			return err
		}
		head.Val = 10
		prev := head
		for _, v := range []uint64{20, 30, 40} {
			oid, node, err := pangolin.Alloc[Node](tx, 1)
			if err != nil {
				return err
			}
			node.Val = v
			prev.Next = oid
			prev = node
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Listing 2, atomic style: pgl_open / modify / pgl_commit. No
	// explicit transaction code, no AddRange — the library diffs the
	// micro-buffer at commit.
	obj, err := pangolin.OpenSingle[Node](pool, root)
	if err != nil {
		log.Fatal(err)
	}
	obj.Value().Val = 11 // value update beyond 8 bytes would work too
	if err := obj.Commit(); err != nil {
		log.Fatal(err)
	}

	// Walk the list read-only (pgl_get: direct NVMM reads).
	fmt.Print("list:")
	for oid := root; !oid.IsNil(); {
		n, err := pangolin.GetFromPool[Node](pool, oid)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %d", n.Val)
		oid = n.Next
	}
	fmt.Println()

	// Simulate a power failure: every cache line that was not flushed
	// and fenced reverts. Reopen runs crash recovery.
	crashed := pool.Device().CrashCopy(pangolin.CrashStrict, 1)
	pool.Close()
	pool2, err := pangolin.OpenDevice(crashed, pangolin.DefaultConfig(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	sum := uint64(0)
	for oid := root; !oid.IsNil(); {
		n, err := pangolin.GetFromPool[Node](pool2, oid)
		if err != nil {
			log.Fatal(err)
		}
		sum += n.Val
		oid = n.Next
	}
	fmt.Printf("after crash+recovery, list sum = %d (want 101)\n", sum)
}
