// Crashtorture demonstrates crash consistency the way the engine's test
// suite proves it: a bank-transfer workload is killed at every single
// persistence point, and after each simulated power failure the reopened
// pool must show a constant total balance — transfers are all-or-nothing.
//
//	go run ./examples/crashtorture
package main

import (
	"fmt"
	"log"

	"github.com/pangolin-go/pangolin"
)

type account struct {
	Balance uint64
}

type bank struct {
	Accounts [8]pangolin.OID
}

const initialBalance = 1000

// crashSignal unwinds the goroutine at the chosen persistence point.
type crashSignal struct{}

func main() {
	totalChecked := 0
	for crashAt := 1; ; crashAt++ {
		crashed, done := runOnce(crashAt)
		totalChecked++
		if !crashed && done {
			fmt.Printf("swept %d crash points; every recovery preserved the total balance\n", totalChecked)
			return
		}
		if crashAt > 5000 {
			log.Fatal("sweep did not terminate")
		}
	}
}

// runOnce builds a bank, then crashes the transfer transaction at the
// crashAt-th flush/fence and validates recovery.
func runOnce(crashAt int) (crashed, completed bool) {
	pool, err := pangolin.Create(pangolin.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	root, err := pangolin.Root[bank](pool, 1)
	if err != nil {
		log.Fatal(err)
	}
	err = pool.Run(func(tx *pangolin.Tx) error {
		b, err := pangolin.Open[bank](tx, root)
		if err != nil {
			return err
		}
		for i := range b.Accounts {
			oid, acct, err := pangolin.Alloc[account](tx, 2)
			if err != nil {
				return err
			}
			acct.Balance = initialBalance
			b.Accounts[i] = oid
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Arm the crash: panic at the crashAt-th persistence operation.
	count := 0
	pool.Device().SetPersistHook(func() {
		count++
		if count == crashAt {
			panic(crashSignal{})
		}
	})
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(crashSignal); !ok {
					panic(r)
				}
				crashed = true
			}
		}()
		// Transfer 250 from account 0 to account 7 — a multi-object
		// transaction that must be atomic.
		err := pool.Run(func(tx *pangolin.Tx) error {
			b, err := pangolin.Get[bank](tx, root)
			if err != nil {
				return err
			}
			from, err := pangolin.Open[account](tx, b.Accounts[0])
			if err != nil {
				return err
			}
			to, err := pangolin.Open[account](tx, b.Accounts[7])
			if err != nil {
				return err
			}
			from.Balance -= 250
			to.Balance += 250
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
		completed = true
	}()
	pool.Device().SetPersistHook(nil)

	// Power fails now. Reopen and audit.
	img := pool.Device().CrashCopy(pangolin.CrashEvictRandom, int64(crashAt))
	pool.Close()
	pool2, err := pangolin.OpenDevice(img, pangolin.DefaultConfig(), nil)
	if err != nil {
		log.Fatalf("crashAt=%d: reopen: %v", crashAt, err)
	}
	defer pool2.Close()
	b, err := pangolin.GetFromPool[bank](pool2, root)
	if err != nil {
		log.Fatalf("crashAt=%d: root: %v", crashAt, err)
	}
	total := uint64(0)
	for _, oid := range b.Accounts {
		acct, err := pangolin.GetFromPool[account](pool2, oid)
		if err != nil {
			log.Fatalf("crashAt=%d: account: %v", crashAt, err)
		}
		total += acct.Balance
	}
	if total != 8*initialBalance {
		log.Fatalf("crashAt=%d: money %s! total=%d want %d",
			crashAt, map[bool]string{true: "created", false: "destroyed"}[total > 8*initialBalance],
			total, 8*initialBalance)
	}
	return crashed, completed
}
