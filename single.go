package pangolin

import (
	"fmt"

	"github.com/pangolin-go/pangolin/internal/mbuf"
)

// Obj is a single-object micro-buffer opened outside a transaction — the
// paper's pgl_open/pgl_commit programming model (Listing 2):
//
//	obj, _ := pangolin.OpenSingle[Node](pool, oid) // pgl_open
//	obj.Value().Count++                            // mutate the DRAM shadow
//	err := obj.Commit()                            // pgl_commit
//
// Commit atomically updates the NVMM object, its checksum, and parity; the
// modified ranges are discovered by diffing, so no AddRange calls are
// needed. Discarding the Obj without Commit abandons the changes.
type Obj[T any] struct {
	pool *Pool
	buf  *mbuf.Buf
	v    *T
	done bool
}

// OpenSingle opens an object into a standalone micro-buffer with integrity
// verification (pgl_open).
func OpenSingle[T any](p *Pool, oid OID) (*Obj[T], error) {
	b, err := p.e.OpenSingle(oid)
	if err != nil {
		return nil, err
	}
	v, err := View[T](b.UserData())
	if err != nil {
		return nil, err
	}
	return &Obj[T]{pool: p, buf: b, v: v}, nil
}

// Value returns the typed view of the buffered object.
func (o *Obj[T]) Value() *T { return o.v }

// Data returns the buffered user data bytes.
func (o *Obj[T]) Data() []byte { return o.buf.UserData() }

// OID returns the underlying object identifier.
func (o *Obj[T]) OID() OID { return o.buf.OID }

// Commit atomically writes the modified parts of the buffer back to NVMM
// (pgl_commit). The Obj must not be used afterwards.
func (o *Obj[T]) Commit() error {
	if o.done {
		return fmt.Errorf("pangolin: object already committed")
	}
	o.done = true
	return o.pool.e.CommitSingle(o.buf)
}
